"""Tests for distance/divergence functionals."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import (
    DiscreteDistribution,
    chi_square_divergence,
    collision_probability,
    hellinger_distance,
    kl_divergence,
    l1_distance,
    l1_distance_to_uniform,
    l2_distance,
    total_variation,
    uniform,
)
from repro.distributions.distances import bernoulli_kl
from repro.exceptions import InvalidDistributionError


@pytest.fixture
def p():
    return DiscreteDistribution([0.5, 0.3, 0.2])


@pytest.fixture
def q():
    return DiscreteDistribution([0.2, 0.3, 0.5])


class TestL1:
    def test_zero_on_self(self, p):
        assert l1_distance(p, p) == 0.0

    def test_symmetric(self, p, q):
        assert l1_distance(p, q) == pytest.approx(l1_distance(q, p))

    def test_known_value(self, p, q):
        assert l1_distance(p, q) == pytest.approx(0.6)

    def test_max_is_two(self):
        a = DiscreteDistribution([1.0, 0.0])
        b = DiscreteDistribution([0.0, 1.0])
        assert l1_distance(a, b) == pytest.approx(2.0)

    def test_tv_is_half_l1(self, p, q):
        assert total_variation(p, q) == pytest.approx(l1_distance(p, q) / 2)

    def test_domain_mismatch(self, p):
        with pytest.raises(InvalidDistributionError):
            l1_distance(p, uniform(4))

    def test_distance_to_uniform_helper(self, p):
        assert l1_distance_to_uniform(p) == pytest.approx(
            l1_distance(p, uniform(3))
        )

    def test_accepts_raw_arrays(self):
        assert l1_distance(np.array([0.5, 0.5]), np.array([1.0, 0.0])) == 1.0


class TestL2:
    def test_l2_le_l1(self, p, q):
        assert l2_distance(p, q) <= l1_distance(p, q) + 1e-12

    def test_l2_known(self):
        a = DiscreteDistribution([1.0, 0.0])
        b = DiscreteDistribution([0.0, 1.0])
        assert l2_distance(a, b) == pytest.approx(math.sqrt(2))


class TestKL:
    def test_zero_on_self(self, p):
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_positive_otherwise(self, p, q):
        assert kl_divergence(p, q) > 0

    def test_infinite_off_support(self):
        a = DiscreteDistribution([0.5, 0.5, 0.0])
        b = DiscreteDistribution([0.5, 0.0, 0.5])
        assert kl_divergence(b, a) == math.inf

    def test_asymmetric(self, p):
        r = DiscreteDistribution([0.1, 0.3, 0.6])
        assert kl_divergence(p, r) != pytest.approx(kl_divergence(r, p))


class TestChiSquare:
    def test_zero_on_self(self, p):
        assert chi_square_divergence(p, p) == pytest.approx(0.0)

    def test_dominates_l2_over_uniform(self):
        # chi^2 against uniform = n * ||p - u||_2^2.
        d = DiscreteDistribution([0.4, 0.3, 0.3])
        u = uniform(3)
        assert chi_square_divergence(d, u) == pytest.approx(
            3 * l2_distance(d, u) ** 2
        )

    def test_infinite_off_support(self):
        a = DiscreteDistribution([1.0, 0.0])
        b = DiscreteDistribution([0.5, 0.5])
        assert chi_square_divergence(b, a) == math.inf


class TestHellinger:
    def test_range(self, p, q):
        assert 0 < hellinger_distance(p, q) < 1

    def test_max_on_disjoint(self):
        a = DiscreteDistribution([1.0, 0.0])
        b = DiscreteDistribution([0.0, 1.0])
        assert hellinger_distance(a, b) == pytest.approx(1.0)


class TestCollisionProbability:
    def test_uniform_minimises(self):
        n = 50
        u = collision_probability(uniform(n))
        skew = collision_probability(DiscreteDistribution(
            np.concatenate([[2.0 / n], np.full(n - 2, 1.0 / n), [0.0]])
        ))
        assert u == pytest.approx(1.0 / n)
        assert skew > u

    def test_lemma_3_2_on_paninski(self):
        """Lemma 3.2: eps-far implies chi >= (1+eps^2)/n (tight for Paninski)."""
        from repro.distributions import paninski_pair

        n, eps = 1000, 0.6
        d = paninski_pair(n, eps, rng=0)
        assert d.collision_probability() == pytest.approx((1 + eps**2) / n)


class TestBernoulliKL:
    def test_zero_on_equal(self):
        assert bernoulli_kl(0.3, 0.3) == pytest.approx(0.0)

    def test_boundary_zero(self):
        assert bernoulli_kl(0.0, 0.5) == pytest.approx(math.log(2))

    def test_infinite_cases(self):
        assert bernoulli_kl(0.5, 0.0) == math.inf
        assert bernoulli_kl(0.5, 1.0) == math.inf

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            bernoulli_kl(1.5, 0.5)
