"""Tests for the identity-to-uniformity filter reduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import (
    DiscreteDistribution,
    IdentityFilter,
    grain,
    l1_distance,
    uniform,
    zipf,
)
from repro.exceptions import ParameterError


class TestGrain:
    def test_grained_is_exact_multiple(self):
        eta = zipf(20, 1.0)
        g = grain(eta, 100)
        scaled = g.probs * 100
        assert np.allclose(scaled, np.round(scaled), atol=1e-9)

    def test_grain_error_bounded(self):
        eta = zipf(50, 1.0)
        m = 1000
        g = grain(eta, m)
        assert l1_distance(g, eta) <= 50 / m

    def test_grain_preserves_grained_input(self):
        eta = DiscreteDistribution([0.5, 0.25, 0.25])
        g = grain(eta, 4)
        assert np.allclose(g.probs, eta.probs)

    def test_grain_too_small_m(self):
        with pytest.raises(ParameterError):
            grain(uniform(10), 5)


class TestIdentityFilter:
    def test_rejects_non_grained_target(self):
        eta = DiscreteDistribution([1 / 3, 1 / 3, 1 / 3])
        with pytest.raises(ParameterError):
            IdentityFilter.for_target(eta, m=4)

    def test_uniform_image_when_mu_equals_eta(self):
        eta = DiscreteDistribution([0.5, 0.25, 0.25])
        filt = IdentityFilter.for_target(eta, m=4)
        image = filt.image_distribution(eta)
        assert image.is_uniform()
        assert image.n == 4

    def test_distance_preserved_full_support(self):
        eta = DiscreteDistribution([0.5, 0.25, 0.25])
        mu = DiscreteDistribution([0.25, 0.5, 0.25])
        filt = IdentityFilter.for_target(eta, m=4)
        input_dist, image_dist = filt.distance_guarantee(mu)
        assert input_dist == pytest.approx(0.5)
        assert image_dist == pytest.approx(input_dist)

    def test_sampled_filter_matches_image_distribution(self):
        eta = DiscreteDistribution([0.5, 0.25, 0.25])
        mu = DiscreteDistribution([0.25, 0.5, 0.25])
        filt = IdentityFilter.for_target(eta, m=4)
        samples = mu.sample(40_000, rng=0)
        image = filt.apply(samples, rng=1)
        counts = np.bincount(image, minlength=4) / image.size
        expected = filt.image_distribution(mu).probs
        assert np.allclose(counts, expected, atol=0.01)

    def test_apply_is_private_coin(self):
        # Two invocations with different rngs give different bucketings but
        # the same histogram in expectation.
        eta = DiscreteDistribution([0.5, 0.5])
        filt = IdentityFilter.for_target(eta, m=4)
        samples = eta.sample(100, rng=0)
        a = filt.apply(samples, rng=1)
        b = filt.apply(samples, rng=2)
        assert not np.array_equal(a, b)

    def test_zero_probability_elements_map_to_junk(self):
        eta = DiscreteDistribution([0.5, 0.5, 0.0])
        filt = IdentityFilter.for_target(eta, m=4)
        assert filt.image_domain_size == 5
        out = filt.apply(np.array([2, 2, 2]), rng=0)
        assert set(out) == {4}

    def test_junk_mass_shows_in_image_distance(self):
        # mu puts mass where eta has none: the image must be far from U_m.
        eta = DiscreteDistribution([0.5, 0.5, 0.0])
        mu = DiscreteDistribution([0.25, 0.25, 0.5])
        filt = IdentityFilter.for_target(eta, m=4)
        _, image_dist = filt.distance_guarantee(mu)
        assert image_dist >= 0.5

    def test_samples_out_of_domain_rejected(self):
        eta = DiscreteDistribution([0.5, 0.5])
        filt = IdentityFilter.for_target(eta, m=2)
        with pytest.raises(ValueError):
            filt.apply(np.array([5]), rng=0)

    def test_end_to_end_identity_testing_via_uniformity(self):
        """The motivating pipeline: test identity to zipf via the filter."""
        from repro.core import CollisionGapTester

        n, m = 100, 4000
        eta = grain(zipf(n, 1.0), m)
        filt = IdentityFilter.for_target(eta, m)
        tester = CollisionGapTester.from_delta(filt.image_domain_size, 0.2)

        # mu = eta: filtered samples are uniform; acceptance ~ 1 - 0.2.
        accept_eq = 0
        trials = 200
        for t in range(trials):
            raw = eta.sample(tester.samples_required, rng=1000 + t)
            if tester.decide(filt.apply(raw, rng=2000 + t)):
                accept_eq += 1
        # mu far from eta: point mass on the heaviest element.
        probs = np.zeros(n)
        probs[0] = 1.0
        mu_far = DiscreteDistribution(probs)
        accept_far = 0
        for t in range(trials):
            raw = mu_far.sample(tester.samples_required, rng=3000 + t)
            if tester.decide(filt.apply(raw, rng=4000 + t)):
                accept_far += 1
        assert accept_eq > accept_far  # the gap signal survives the filter
        assert accept_eq / trials >= 0.7
