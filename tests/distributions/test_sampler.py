"""Tests for sample oracles (information boundary + accounting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import CountingOracle, SampleOracle, uniform


class TestSampleOracle:
    def test_draw_shape(self):
        oracle = SampleOracle(uniform(30), rng=0)
        assert oracle.draw(12).shape == (12,)

    def test_domain_size_exposed(self):
        assert SampleOracle(uniform(30), rng=0).domain_size == 30

    def test_split_streams_are_independent(self):
        oracle = SampleOracle(uniform(1000), rng=0)
        parts = oracle.split(3)
        draws = [tuple(p.draw(10)) for p in parts]
        assert len(set(draws)) == 3

    def test_split_deterministic(self):
        a = SampleOracle(uniform(1000), rng=5).split(2)[0].draw(10)
        b = SampleOracle(uniform(1000), rng=5).split(2)[0].draw(10)
        assert np.array_equal(a, b)


class TestCountingOracle:
    def test_counts_accumulate(self):
        oracle = CountingOracle(uniform(30), rng=0)
        oracle.draw(5)
        oracle.draw(7)
        assert oracle.samples_drawn == 12

    def test_cost_charged(self):
        oracle = CountingOracle(uniform(30), rng=0, cost_per_sample=2.5)
        oracle.draw(4)
        assert oracle.total_cost == pytest.approx(10.0)

    def test_budget_enforced(self):
        oracle = CountingOracle(uniform(30), rng=0, budget=10)
        oracle.draw(8)
        assert oracle.remaining_budget == 2
        with pytest.raises(RuntimeError):
            oracle.draw(3)

    def test_budget_exact_boundary_ok(self):
        oracle = CountingOracle(uniform(30), rng=0, budget=10)
        oracle.draw(10)
        assert oracle.remaining_budget == 0

    def test_invalid_cost(self):
        with pytest.raises(ValueError):
            CountingOracle(uniform(30), cost_per_sample=0.0)

    def test_unlimited_budget_is_none(self):
        assert CountingOracle(uniform(30)).remaining_budget is None

    def test_failed_draw_leaves_count_untouched(self):
        """Regression: the counter used to increment *before* delegating,
        so a failing draw corrupted the sample accounting."""
        oracle = CountingOracle(uniform(30), rng=0)
        with pytest.raises(ValueError):
            oracle.draw(-1)
        assert oracle.samples_drawn == 0
        assert oracle.total_cost == 0.0

    def test_rejected_budget_draw_leaves_count_untouched(self):
        oracle = CountingOracle(uniform(30), rng=0, budget=5)
        oracle.draw(3)
        with pytest.raises(RuntimeError):
            oracle.draw(4)
        assert oracle.samples_drawn == 3
