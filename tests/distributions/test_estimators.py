"""Tests for sample-based estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import far_family, uniform
from repro.distributions.estimators import (
    bootstrap_ci,
    collision_probability_estimate,
    empirical_distribution,
    l1_bracket_from_l2,
    l2_distance_to_uniform_estimate,
)
from repro.exceptions import ParameterError


class TestEmpiricalDistribution:
    def test_matches_counts(self):
        emp = empirical_distribution(np.array([0, 0, 1, 2]), 4)
        assert emp.prob(0) == pytest.approx(0.5)
        assert emp.prob(3) == 0.0

    def test_domain_checked(self):
        with pytest.raises(ParameterError):
            empirical_distribution(np.array([5]), 3)

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            empirical_distribution(np.array([], dtype=int), 3)


class TestCollisionEstimate:
    def test_unbiased_on_uniform(self):
        n, s = 200, 400
        u = uniform(n)
        estimates = [
            collision_probability_estimate(u.sample(s, rng=i), n)
            for i in range(300)
        ]
        assert np.mean(estimates) == pytest.approx(1.0 / n, rel=0.05)

    def test_unbiased_on_far(self):
        n, s, eps = 200, 400, 0.8
        far = far_family("paninski", n, eps, rng=0)
        true_chi = far.collision_probability()
        estimates = [
            collision_probability_estimate(far.sample(s, rng=100 + i), n)
            for i in range(300)
        ]
        assert np.mean(estimates) == pytest.approx(true_chi, rel=0.05)

    def test_exact_on_degenerate(self):
        # All samples identical: chi_hat = 1.
        assert collision_probability_estimate(np.zeros(10, dtype=int), 5) == 1.0

    def test_needs_two_samples(self):
        with pytest.raises(ParameterError):
            collision_probability_estimate(np.array([1]), 5)


class TestL2Estimate:
    def test_near_zero_on_uniform(self):
        n = 500
        est = l2_distance_to_uniform_estimate(uniform(n).sample(3000, rng=1), n)
        assert est <= 0.02

    def test_recovers_true_l2_on_far(self):
        n, eps = 500, 0.8
        far = far_family("paninski", n, eps, rng=2)
        true_l2 = float(np.sqrt(((far.probs - 1 / n) ** 2).sum()))
        est = l2_distance_to_uniform_estimate(far.sample(20_000, rng=3), n)
        assert est == pytest.approx(true_l2, rel=0.15)

    def test_clipped_at_zero(self):
        # Tiny samples of uniform may produce chi_hat < 1/n: no NaNs.
        n = 1000
        est = l2_distance_to_uniform_estimate(uniform(n).sample(50, rng=4), n)
        assert est >= 0.0


class TestL1Bracket:
    def test_contains_truth_on_families(self):
        n, eps = 400, 0.7
        for family in ("paninski", "two_bump", "heavy"):
            far = far_family(family, n, eps, rng=5)
            est = l2_distance_to_uniform_estimate(far.sample(30_000, rng=6), n)
            lo, hi = l1_bracket_from_l2(est, n)
            assert lo <= eps * 1.1
            assert hi >= eps * 0.9

    def test_upper_clipped_at_two(self):
        assert l1_bracket_from_l2(1.5, 10_000)[1] == 2.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            l1_bracket_from_l2(-0.1, 10)


class TestBootstrap:
    def test_interval_contains_plugin_mean(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(5.0, 1.0, size=400)
        lo, hi = bootstrap_ci(samples, lambda b: float(np.mean(b)), rng=1)
        assert lo <= 5.0 <= hi
        assert hi - lo < 0.5

    def test_collision_statistic_interval(self):
        n = 200
        far = far_family("paninski", n, 0.8, rng=7)
        samples = far.sample(2000, rng=8)
        lo, hi = bootstrap_ci(
            samples,
            lambda b: collision_probability_estimate(b, n),
            rng=9,
        )
        assert lo <= far.collision_probability() * 1.3
        assert hi >= far.collision_probability() * 0.7

    def test_validation(self):
        with pytest.raises(ParameterError):
            bootstrap_ci(np.array([1.0]), lambda b: 0.0)
        with pytest.raises(ParameterError):
            bootstrap_ci(np.arange(10), lambda b: 0.0, level=1.5)
