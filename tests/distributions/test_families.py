"""Tests for the certified far-family builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import (
    FAR_FAMILY_BUILDERS,
    far_family,
    heavy_element,
    l1_distance_to_uniform,
    mixture,
    paninski_pair,
    restricted_support,
    two_bump,
    uniform,
    zipf,
)
from repro.exceptions import ParameterError


ALL_FAMILIES = sorted(FAR_FAMILY_BUILDERS)


class TestCalibration:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    @pytest.mark.parametrize("eps", [0.1, 0.5, 0.9])
    def test_exact_distance(self, family, eps):
        d = far_family(family, 1000, eps, rng=3)
        assert l1_distance_to_uniform(d) == pytest.approx(eps, abs=1e-9)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_odd_eps_values(self, family):
        d = far_family(family, 1000, 0.437, rng=3)
        assert l1_distance_to_uniform(d) == pytest.approx(0.437, abs=1e-9)

    def test_unknown_family(self):
        with pytest.raises(ParameterError):
            far_family("nope", 100, 0.5)


class TestPaninski:
    def test_requires_even_n(self):
        with pytest.raises(ParameterError):
            paninski_pair(11, 0.5)

    def test_requires_eps_le_one(self):
        with pytest.raises(ParameterError):
            paninski_pair(10, 1.2)

    def test_collision_probability_meets_lemma32_exactly(self):
        n, eps = 500, 0.4
        d = paninski_pair(n, eps, rng=1)
        assert d.collision_probability() == pytest.approx((1 + eps * eps) / n)

    def test_randomised_signs_differ_across_seeds(self):
        a = paninski_pair(100, 0.5, rng=1)
        b = paninski_pair(100, 0.5, rng=2)
        assert not np.array_equal(a.probs, b.probs)

    def test_pair_structure(self):
        d = paninski_pair(10, 0.5, rng=0)
        pairs = d.probs.reshape(5, 2)
        assert np.allclose(pairs.sum(axis=1), 0.2)


class TestTwoBump:
    def test_mass_split(self):
        d = two_bump(100, 0.6)
        assert d.probs[:50].sum() == pytest.approx(0.5 + 0.3)

    def test_odd_domain(self):
        d = two_bump(101, 0.4)
        assert l1_distance_to_uniform(d) == pytest.approx(0.4, abs=1e-9)
        # Middle element untouched.
        assert d.prob(50) == pytest.approx(1.0 / 101)

    def test_too_large_eps_rejected(self):
        with pytest.raises(ParameterError):
            two_bump(10, 1.99)


class TestHeavyElement:
    def test_heavy_mass(self):
        d = heavy_element(100, 0.5, element=7)
        assert d.prob(7) == pytest.approx(1.0 / 100 + 0.25)

    def test_maximises_collision_among_families(self):
        n, eps = 1000, 0.5
        chis = {
            family: far_family(family, n, eps, rng=0).collision_probability()
            for family in ALL_FAMILIES
        }
        assert chis["heavy"] == max(chis.values())
        # paninski and two_bump both sit exactly at the Lemma 3.2 floor
        # (1 + eps^2)/n; allow float noise in the tie.
        assert chis["paninski"] == pytest.approx(min(chis.values()), rel=1e-9)

    def test_element_range_checked(self):
        with pytest.raises(ParameterError):
            heavy_element(10, 0.5, element=10)


class TestRestrictedSupport:
    def test_integer_support_case(self):
        # eps = 0.5 with n = 1000 -> support exactly 750.
        d = restricted_support(1000, 0.5)
        assert l1_distance_to_uniform(d) == pytest.approx(0.5, abs=1e-12)

    def test_fractional_support_case(self):
        d = restricted_support(1000, 0.333)
        assert l1_distance_to_uniform(d) == pytest.approx(0.333, abs=1e-9)

    def test_support_shrinks_with_eps(self):
        small = restricted_support(1000, 0.2).support_size()
        large = restricted_support(1000, 0.8).support_size()
        assert large < small


class TestZipf:
    def test_exponent_zero_is_uniform(self):
        assert zipf(50, 0.0).is_uniform()

    def test_monotone_decreasing(self):
        d = zipf(100, 1.0)
        assert np.all(np.diff(d.probs) <= 0)

    def test_farther_with_larger_exponent(self):
        d1 = l1_distance_to_uniform(zipf(100, 0.5))
        d2 = l1_distance_to_uniform(zipf(100, 1.5))
        assert d2 > d1


class TestMixture:
    def test_mixture_of_identical_is_identity(self):
        u = uniform(10)
        m = mixture([u, u], [0.3, 0.7])
        assert np.allclose(m.probs, u.probs)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ParameterError):
            mixture([uniform(5), uniform(5)], [0.5, 0.6])

    def test_mixture_interpolates_distance(self):
        u = uniform(100)
        f = two_bump(100, 0.8)
        m = mixture([u, f], [0.5, 0.5])
        assert l1_distance_to_uniform(m) == pytest.approx(0.4, abs=1e-9)
