"""Tests for Luby's MIS program."""

from __future__ import annotations

import pytest

from repro.localmodel import luby_mis, verify_mis
from repro.simulator import Topology

TOPOLOGIES = [
    Topology.line(25),
    Topology.ring(16),
    Topology.star(12),
    Topology.grid(5, 5),
    Topology.complete(10),
    Topology.gnp(40, 0.12, rng=5),
]


class TestCorrectness:
    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_maximal_independent_set(self, topo, seed):
        membership, _ = luby_mis(topo, rng=seed)
        verify_mis(topo, membership)

    def test_complete_graph_single_member(self):
        membership, _ = luby_mis(Topology.complete(15), rng=3)
        assert sum(membership) == 1

    def test_star_center_or_all_leaves(self):
        membership, _ = luby_mis(Topology.star(10), rng=4)
        if membership[0]:
            assert sum(membership) == 1
        else:
            assert all(membership[1:])

    def test_single_node(self):
        membership, _ = luby_mis(Topology.line(1), rng=0)
        assert membership == [True]

    def test_different_seeds_can_differ(self):
        results = {tuple(luby_mis(Topology.ring(12), rng=s)[0]) for s in range(6)}
        assert len(results) > 1


class TestRoundComplexity:
    def test_logarithmic_phases(self):
        """O(log k) phases w.h.p.; each phase is 3 rounds."""
        topo = Topology.gnp(200, 0.05, rng=6)
        _, rounds = luby_mis(topo, rng=7)
        import math

        assert rounds <= 3 * (4 * math.log2(200) + 8)

    def test_power_graph_mis_spreads_members(self):
        """MIS on G^r: members are > r apart in G (the LOCAL invariant)."""
        base = Topology.line(60)
        r = 5
        power = base.power_graph(r)
        membership, _ = luby_mis(power, rng=8)
        verify_mis(power, membership)
        members = [v for v in range(60) if membership[v]]
        gaps = [b - a for a, b in zip(members, members[1:])]
        assert all(g > r for g in gaps)


class TestVerifier:
    def test_rejects_adjacent_members(self):
        topo = Topology.line(3)
        with pytest.raises(AssertionError):
            verify_mis(topo, [True, True, False])

    def test_rejects_non_maximal(self):
        topo = Topology.line(5)
        with pytest.raises(AssertionError):
            verify_mis(topo, [True, False, False, False, True])
