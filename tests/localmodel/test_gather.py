"""Tests for catchment assignment (sample routing to MIS nodes)."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.localmodel import assign_catchments, luby_mis
from repro.simulator import Topology


class TestAssignment:
    def test_every_node_assigned(self):
        topo = Topology.ring(30)
        r = 3
        mis, _ = luby_mis(topo.power_graph(r), rng=0)
        result = assign_catchments(topo, mis, r)
        assert len(result.owner) == topo.k
        assert all(mis[o] for o in result.owner)

    def test_owner_is_closest_mis_node(self):
        topo = Topology.line(20)
        r = 4
        mis, _ = luby_mis(topo.power_graph(r), rng=1)
        result = assign_catchments(topo, mis, r)
        members = [v for v in range(20) if mis[v]]
        for v in range(20):
            d_owner = abs(v - result.owner[v])
            best = min(abs(v - m) for m in members)
            assert d_owner == best

    def test_ties_break_to_smaller_id(self):
        # Line 0-1-2 with MIS {0, 2}: node 1 is equidistant.
        topo = Topology.line(3)
        result = assign_catchments(topo, [True, False, True], r=1)
        assert result.owner[1] == 0

    def test_catchments_partition_nodes(self):
        topo = Topology.grid(6, 6)
        r = 2
        mis, _ = luby_mis(topo.power_graph(r), rng=2)
        result = assign_catchments(topo, mis, r)
        all_nodes = sorted(
            v for nodes in result.samples_at.values() for v in nodes
        )
        assert all_nodes == list(range(topo.k))

    def test_min_catchment_at_least_half_radius(self):
        """Section 6: each MIS node owns its r/2-ball, so >= r/2 samples."""
        topo = Topology.ring(64)
        r = 8
        mis, _ = luby_mis(topo.power_graph(r), rng=3)
        result = assign_catchments(topo, mis, r)
        min_catch = min(len(v) for v in result.samples_at.values())
        assert min_catch >= r // 2

    def test_mis_size_bounded(self):
        """At most 2k/r MIS nodes on a connected graph."""
        topo = Topology.ring(64)
        r = 8
        mis, _ = luby_mis(topo.power_graph(r), rng=4)
        assert sum(mis) <= 2 * topo.k // r

    def test_routing_rounds_at_most_r(self):
        topo = Topology.grid(8, 8)
        r = 3
        mis, _ = luby_mis(topo.power_graph(r), rng=5)
        result = assign_catchments(topo, mis, r)
        assert result.routing_rounds <= r


class TestValidation:
    def test_non_maximal_mis_detected(self):
        topo = Topology.line(20)
        mis = [False] * 20
        mis[0] = True  # nothing within r=2 of node 10
        with pytest.raises(ParameterError):
            assign_catchments(topo, mis, r=2)

    def test_empty_mis_rejected(self):
        with pytest.raises(ParameterError):
            assign_catchments(Topology.line(5), [False] * 5, r=2)

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            assign_catchments(Topology.line(5), [True] * 4, r=2)
