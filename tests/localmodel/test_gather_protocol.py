"""Tests for the message-passing gather protocol (CLAIM + ROUTE)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.localmodel import assign_catchments, luby_mis
from repro.localmodel.gather_protocol import run_gather_protocol
from repro.simulator import FaultPlan, Topology


def _setup(topo, r, seed=0):
    power = topo.power_graph(min(r, topo.k - 1))
    mis, _ = luby_mis(power, rng=seed)
    samples = np.random.default_rng(seed).integers(0, 1000, size=topo.k)
    return mis, samples


class TestEquivalenceWithStructuralGather:
    @pytest.mark.parametrize(
        "topo,r",
        [
            (Topology.line(30), 4),
            (Topology.ring(24), 3),
            (Topology.grid(5, 6), 2),
            (Topology.gnp(40, 0.12, rng=9), 2),
        ],
        ids=["line", "ring", "grid", "gnp"],
    )
    def test_same_owner_assignment(self, topo, r):
        """The protocol and the structural rule agree on every owner."""
        mis, samples = _setup(topo, r)
        structural = assign_catchments(topo, mis, r)
        protocol = run_gather_protocol(topo, mis, samples, r, rng=1)
        assert protocol.owner == structural.owner

    def test_every_sample_delivered_exactly_once(self):
        topo = Topology.grid(6, 6)
        r = 2
        mis, samples = _setup(topo, r, seed=1)
        result = run_gather_protocol(topo, mis, samples, r, rng=2)
        delivered = sorted(
            origin
            for pile in result.samples_at.values()
            for origin, _ in pile
        )
        assert delivered == list(range(topo.k))
        # Values are the original samples.
        for pile in result.samples_at.values():
            for origin, value in pile:
                assert value == samples[origin]


class TestRoundAccounting:
    def test_rounds_linear_in_radius(self):
        topo = Topology.ring(48)
        rounds = []
        for r in (2, 4, 8):
            mis, samples = _setup(topo, r, seed=2)
            result = run_gather_protocol(topo, mis, samples, r, rng=3)
            rounds.append(result.rounds)
        # CLAIM + ROUTE are both <= r (+ quiet transitions): ~2r + c.
        for r, got in zip((2, 4, 8), rounds):
            assert got <= 3 * r + 6

    def test_non_maximal_mis_detected(self):
        topo = Topology.line(20)
        mis = [False] * 20
        mis[0] = True
        with pytest.raises(SimulationError, match="no MIS owner"):
            run_gather_protocol(topo, mis, list(range(20)), 2, rng=4)


class TestGracefulDegradation:
    def test_strict_run_raises_when_faults_strand_samples(self):
        topo = Topology.ring(24)
        mis, samples = _setup(topo, 3)
        plan = FaultPlan(seed=2, drop_prob=0.4)
        with pytest.raises(SimulationError):
            run_gather_protocol(topo, mis, samples, 3, rng=1, faults=plan)

    def test_non_strict_run_reports_undelivered_instead(self):
        topo = Topology.ring(24)
        mis, samples = _setup(topo, 3)
        plan = FaultPlan(seed=2, drop_prob=0.4)
        result = run_gather_protocol(
            topo, mis, samples, 3, rng=1, strict=False, faults=plan
        )
        stranded = [pair for pile in result.undelivered for pair in pile]
        delivered = [
            origin
            for pile in result.samples_at.values()
            for origin, _ in pile
        ]
        # Drops can vaporise a bundle outright, so some samples are simply
        # lost — but none is ever counted twice, and the survivors split
        # cleanly between delivered and stranded.
        accounted = sorted(delivered + [o for o, _ in stranded])
        assert len(accounted) == len(set(accounted))
        assert set(accounted) <= set(range(topo.k))
        assert stranded  # this plan really does strand samples
        assert len(accounted) < topo.k  # and loses some in flight

    def test_non_strict_reliable_run_matches_strict(self):
        topo = Topology.ring(24)
        mis, samples = _setup(topo, 3)
        strict = run_gather_protocol(topo, mis, samples, 3, rng=1)
        relaxed = run_gather_protocol(
            topo, mis, samples, 3, rng=1, strict=False
        )
        assert relaxed.owner == strict.owner
        assert relaxed.samples_at == strict.samples_at
        assert all(not pile for pile in relaxed.undelivered)
