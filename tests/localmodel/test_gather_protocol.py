"""Tests for the message-passing gather protocol (CLAIM + ROUTE)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.localmodel import assign_catchments, luby_mis
from repro.localmodel.gather_protocol import run_gather_protocol
from repro.simulator import Topology


def _setup(topo, r, seed=0):
    power = topo.power_graph(min(r, topo.k - 1))
    mis, _ = luby_mis(power, rng=seed)
    samples = np.random.default_rng(seed).integers(0, 1000, size=topo.k)
    return mis, samples


class TestEquivalenceWithStructuralGather:
    @pytest.mark.parametrize(
        "topo,r",
        [
            (Topology.line(30), 4),
            (Topology.ring(24), 3),
            (Topology.grid(5, 6), 2),
            (Topology.gnp(40, 0.12, rng=9), 2),
        ],
        ids=["line", "ring", "grid", "gnp"],
    )
    def test_same_owner_assignment(self, topo, r):
        """The protocol and the structural rule agree on every owner."""
        mis, samples = _setup(topo, r)
        structural = assign_catchments(topo, mis, r)
        protocol = run_gather_protocol(topo, mis, samples, r, rng=1)
        assert protocol.owner == structural.owner

    def test_every_sample_delivered_exactly_once(self):
        topo = Topology.grid(6, 6)
        r = 2
        mis, samples = _setup(topo, r, seed=1)
        result = run_gather_protocol(topo, mis, samples, r, rng=2)
        delivered = sorted(
            origin
            for pile in result.samples_at.values()
            for origin, _ in pile
        )
        assert delivered == list(range(topo.k))
        # Values are the original samples.
        for pile in result.samples_at.values():
            for origin, value in pile:
                assert value == samples[origin]


class TestRoundAccounting:
    def test_rounds_linear_in_radius(self):
        topo = Topology.ring(48)
        rounds = []
        for r in (2, 4, 8):
            mis, samples = _setup(topo, r, seed=2)
            result = run_gather_protocol(topo, mis, samples, r, rng=3)
            rounds.append(result.rounds)
        # CLAIM + ROUTE are both <= r (+ quiet transitions): ~2r + c.
        for r, got in zip((2, 4, 8), rounds):
            assert got <= 3 * r + 6

    def test_non_maximal_mis_detected(self):
        topo = Topology.line(20)
        mis = [False] * 20
        mis[0] = True
        with pytest.raises(SimulationError, match="no MIS owner"):
            run_gather_protocol(topo, mis, list(range(20)), 2, rng=4)
