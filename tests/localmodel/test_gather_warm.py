"""Tests for the gather protocol's warm-start (preloaded CLAIM fixpoint)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.localmodel import assign_catchments, luby_mis
from repro.localmodel.gather_protocol import run_gather_protocol
from repro.simulator import Topology


def _setup(topo, r, seed=0):
    power = topo.power_graph(min(r, topo.k - 1))
    mis, _ = luby_mis(power, rng=seed)
    samples = np.random.default_rng(seed).integers(0, 1000, size=topo.k)
    return mis, samples


@pytest.mark.parametrize(
    "topo,r",
    [
        (Topology.line(30), 4),
        (Topology.ring(24), 3),
        (Topology.grid(5, 6), 2),
        (Topology.gnp(40, 0.12, rng=9), 2),
        (Topology.random_regular(36, 3, rng=1), 3),
    ],
    ids=["line", "ring", "grid", "gnp", "regular"],
)
class TestWarmEqualsCold:
    def test_same_assignment_and_samples(self, topo, r):
        mis, samples = _setup(topo, r)
        cold = run_gather_protocol(topo, mis, samples, r, rng=1, warm_start=False)
        warm = run_gather_protocol(topo, mis, samples, r, rng=1, warm_start=True)
        assert warm.owner == cold.owner
        assert warm.samples_at == cold.samples_at
        # Warm runs route only: the CLAIM wave's rounds are gone.
        assert warm.rounds < cold.rounds
        assert warm.rounds <= r + 2

    def test_matches_structural_rule(self, topo, r):
        mis, samples = _setup(topo, r)
        structural = assign_catchments(topo, mis, r)
        warm = run_gather_protocol(topo, mis, samples, r, rng=1, warm_start=True)
        assert warm.owner == structural.owner
