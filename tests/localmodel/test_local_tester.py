"""Tests for the Section 6 LOCAL-model uniformity tester."""

from __future__ import annotations

import pytest

from repro.distributions import far_family, uniform
from repro.exceptions import InfeasibleParametersError, ParameterError
from repro.localmodel import LocalUniformityTester
from repro.simulator import Topology

# A feasible ring configuration (see DESIGN.md E7): weak p, 1-D topology.
N, EPS, P, R = 20_000, 1.0, 0.45, 64
K = 4096


@pytest.fixture(scope="module")
def ring() -> Topology:
    return Topology.ring(K)


@pytest.fixture(scope="module")
def tester() -> LocalUniformityTester:
    return LocalUniformityTester(n=N, eps=EPS, p=P)


@pytest.fixture(scope="module")
def plan(tester, ring):
    return tester.plan(ring, R, rng=0)


class TestPlan:
    def test_structure_bounds(self, plan):
        assert plan.mis_size <= 2 * K // R
        assert plan.min_catchment >= R // 2

    def test_round_accounting(self, plan):
        assert plan.rounds == plan.mis_rounds_on_power_graph * R + plan.routing_rounds
        assert plan.routing_rounds <= R

    def test_params_fit_catchments(self, plan):
        assert plan.params.samples_per_node <= plan.min_catchment

    def test_radius_validation(self, tester, ring):
        with pytest.raises(ParameterError):
            tester.plan(ring, 0)

    def test_infeasible_radius_raises(self, tester, ring):
        with pytest.raises(InfeasibleParametersError):
            tester.plan(ring, 2, rng=1)  # catchments of ~1 sample


class TestDecisions:
    def test_domain_checked(self, tester, plan):
        with pytest.raises(ParameterError):
            tester.test_with_plan(plan, uniform(N + 1), rng=0)

    def test_uniform_error_within_budget(self, tester, ring, plan):
        err = sum(
            not tester.test_with_plan(plan, uniform(N), rng=100 + i)
            for i in range(60)
        ) / 60
        assert err <= P + 0.15

    def test_far_error_within_budget(self, tester, ring, plan):
        far = far_family("paninski", N, EPS, rng=1)
        err = sum(
            tester.test_with_plan(plan, far, rng=200 + i) for i in range(60)
        ) / 60
        assert err <= P + 0.15

    def test_run_reports_consistent(self, tester, ring):
        report = tester.run(ring, uniform(N), R, rng=3)
        assert report.radius == R
        assert report.rounds > 0


class TestChooseRadius:
    def test_finds_feasible_radius(self, tester, ring):
        r = tester.choose_radius(ring, rng=4, start=16)
        assert r >= 16
        # The chosen radius must actually be feasible.
        plan = tester.plan(ring, r, rng=5)
        assert plan.params.samples_per_node <= plan.min_catchment

    def test_infeasible_network_raises(self):
        small = LocalUniformityTester(n=1_000_000, eps=0.5, p=1 / 3)
        with pytest.raises(InfeasibleParametersError):
            small.choose_radius(Topology.ring(8), rng=0)
