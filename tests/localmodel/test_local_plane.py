"""Tests for the LOCAL trial plane: MIS layout replay + batched verdicts.

The load-bearing property throughout: the fast path must be
**bit-identical per seed** to the scalar Section 6 tester — same MIS,
same catchments, same samples, same AND-rule verdict — because the
protocol's control flow never reads a sample's value.  Every test here
pins some face of that contract against real engine runs.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.distributions import far_family, uniform
from repro.exceptions import (
    InfeasibleParametersError,
    ParameterError,
    SimulationError,
)
from repro.experiments.runner import TrialRunner
from repro.localmodel import LocalLayout, LocalTrialRunner, LocalUniformityTester
from repro.localmodel.gather import assign_catchments
from repro.localmodel.local_plane import (
    effective_radius,
    mis_generator,
    power_adjacency,
    replay_luby_mis,
)
from repro.localmodel.mis import luby_mis
from repro.localmodel.tester import _LocalTrialExperiment
from repro.simulator import Topology

# Feasible small instance (see DESIGN.md E7 economics): weak p, eps near
# the top of its range so Theorem 1.1 fits the realised catchments.
N, EPS, P = 2_000, 1.5, 0.45
SEEDS = [11, 22, 33, 44]

#: Structural (layout) coverage: feasibility not required.
TOPOLOGIES = {
    "ring": Topology.ring(512),
    "grid": Topology.grid(16, 16),
    "star": Topology.star(65),
}

#: Verdict coverage needs a feasible AND rule: the star collapses to one
#: virtual node at r >= 2 (never feasible), so it is structural-only.
VERDICT_CONFIGS = [
    ("ring", Topology.ring(512), 16),
    ("grid", Topology.grid(32, 32), 8),
]


@pytest.fixture(scope="module")
def tester():
    return LocalUniformityTester(n=N, eps=EPS, p=P)


@pytest.fixture(scope="module")
def far():
    return far_family("support", N, EPS)


class TestPowerAdjacency:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("r", [1, 2, 5])
    def test_matches_power_graph(self, name, r):
        """Property: the bitset BFS reproduces Topology.power_graph."""
        topo = TOPOLOGIES[name]
        src, dst = power_adjacency(topo, r)
        power = topo.power_graph(r)
        want = sorted((v, u) for v in range(topo.k) for u in power.neighbors(v))
        assert want == sorted(zip(src.tolist(), dst.tolist()))

    def test_rejects_bad_radius(self):
        with pytest.raises(ParameterError, match="power"):
            power_adjacency(TOPOLOGIES["ring"], 0)


class TestReplayLubyMis:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_engine_run(self, name, seed):
        """Property: membership AND round count equal the engine's,
        drawing the same per-node keyed priorities."""
        topo = TOPOLOGIES[name]
        radius = effective_radius(topo, 4)
        power = topo.power_graph(radius)
        membership, rounds = replay_luby_mis(
            topo.k, power_adjacency(topo, radius), mis_generator(seed, radius)
        )
        engine_mis, engine_rounds = luby_mis(power, mis_generator(seed, radius))
        assert [bool(b) for b in membership] == engine_mis
        assert rounds == engine_rounds

    def test_edgeless_graph_joins_everyone_without_drawing(self):
        """No drawers -> all-MIS at zero rounds, and crucially the parent
        generator is never spawned (matching the engine's lazy spawn)."""
        gen = mis_generator(7, 1)
        before = gen.bit_generator.state
        membership, rounds = replay_luby_mis(
            4, (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)), gen
        )
        assert membership.all() and rounds == 0
        assert gen.bit_generator.state == before


class TestLocalLayout:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_engine_structures(self, name, seed):
        """Property: MIS membership, round count, and every node's
        catchment owner equal a real engine run on the same seed."""
        topo = TOPOLOGIES[name]
        layout = LocalLayout.build(topo, 4, base_seed=seed)
        check = layout.verify_layout(topo)
        assert check.equivalent, check.mismatched_nodes
        # Catchments also reachable directly from the engine membership.
        engine_mis, _ = luby_mis(
            topo.power_graph(layout.radius), mis_generator(seed, layout.radius)
        )
        gather = assign_catchments(topo, engine_mis, layout.radius)
        assert layout.gather == gather

    def test_cached_on_schedule(self):
        topo = Topology.ring(64)
        first = LocalLayout.build(topo, 4, base_seed=1)
        assert LocalLayout.build(topo, 4, base_seed=1) is first
        # Raw radii sharing the effective radius share the cache entry...
        assert LocalLayout.build(topo, 4, base_seed=2) is not first
        big = LocalLayout.build(topo, 100, base_seed=1)
        assert LocalLayout.build(topo, 200, base_seed=1) is big

    def test_rejects_bad_parameters(self):
        topo = Topology.ring(64)
        with pytest.raises(ParameterError, match="radius"):
            LocalLayout.build(topo, 0)
        layout = LocalLayout.build(topo, 4, base_seed=0)
        with pytest.raises(ParameterError, match="built for k"):
            layout.verify_layout(Topology.ring(65))


class TestLocalTrialRunner:
    @pytest.mark.parametrize("name,topo,r", VERDICT_CONFIGS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fast_flags_match_scalar(self, tester, far, name, topo, r, seed):
        """Property: per-trial error flags are bit-identical to the
        scalar test_with_plan experiment on the same chunk streams."""
        runner = LocalTrialRunner.build(tester, topo, r, base_seed=seed)
        plan = tester.plan(
            topo, r, mis_generator(seed, effective_radius(topo, r))
        )
        for dist, is_uniform in ((uniform(N), True), (far, False)):
            fast = runner.run_flags(dist, is_uniform, 40)
            experiment = _LocalTrialExperiment(
                tester=tester, plan=plan,
                distribution=dist, is_uniform=is_uniform,
            )
            scalar = TrialRunner(base_seed=seed).run_flags(
                experiment, 40, "local", topo.k
            )
            np.testing.assert_array_equal(fast, scalar)

    def test_per_seed_verdicts_match_test_with_plan(self, tester):
        topo = Topology.ring(512)
        runner = LocalTrialRunner.build(tester, topo, 16, base_seed=5)
        plan = tester.plan(topo, 16, mis_generator(5, 16))
        dist = uniform(N)
        fast = runner.verdicts_for_seeds(dist, SEEDS)
        scalar = [tester.test_with_plan(plan, dist, rng=s) for s in SEEDS]
        assert fast == scalar

    def test_estimate_error_routes_agree(self, tester, far):
        """estimate_error(fast_path=True) == the scalar route, trial by
        trial — engine_check=1.0 re-runs every trial and would raise."""
        topo = Topology.ring(512)
        fast = tester.estimate_error(
            topo, far, False, 16, 30, rng=9,
            fast_path=True, engine_check=1.0,
        )
        scalar = tester.estimate_error(topo, far, False, 16, 30, rng=9)
        assert fast == scalar

    def test_generator_rng_keeps_legacy_route(self, tester):
        """A shared Generator falls back to the sequential loop, and the
        fast path refuses it (chunk keying needs a seed)."""
        topo = Topology.ring(512)
        rate = tester.estimate_error(
            topo, uniform(N), True, 16, 5, rng=np.random.default_rng(3)
        )
        assert 0.0 <= rate <= 1.0
        with pytest.raises(ParameterError, match="seed-like"):
            tester.estimate_error(
                topo, uniform(N), True, 16, 5,
                rng=np.random.default_rng(3), fast_path=True,
            )

    def test_engine_check_detects_verdict_divergence(self, tester):
        """A runner with corrupted slot lists must fail the prefix check:
        duplicating a slot forces a collision in every repetition."""
        topo = Topology.ring(512)
        good = LocalTrialRunner.build(tester, topo, 16, base_seed=9)
        members = good.members.copy()
        members[:, 1:] = members[:, :1]  # all repetitions self-collide
        bad = dataclasses.replace(good, members=members)
        with pytest.raises(SimulationError, match="diverge"):
            bad.run_flags(uniform(N), True, 20, engine_check=1.0)

    def test_engine_check_detects_layout_divergence(self, tester):
        """A corrupted layout must fail the engine MIS cross-check."""
        topo = Topology.ring(512)
        good = LocalTrialRunner.build(tester, topo, 16, base_seed=9)
        flipped = dataclasses.replace(
            good.layout, membership=~good.layout.membership
        )
        bad = dataclasses.replace(good, layout=flipped)
        with pytest.raises(SimulationError, match="layout diverges"):
            bad.run_flags(uniform(N), True, 20, engine_check=0.5)

    def test_engine_check_validation(self, tester, far):
        runner = LocalTrialRunner.build(tester, Topology.ring(512), 16)
        with pytest.raises(ParameterError, match="engine_check"):
            runner.run_flags(far, False, 4, engine_check=1.5)

    def test_infeasible_radius_raises(self, tester):
        with pytest.raises(InfeasibleParametersError):
            LocalTrialRunner.build(tester, Topology.ring(512), 2)


class TestChooseRadiusFastPath:
    def test_probe_feasible_at_own_seed_and_cached(self, tester):
        """The fast search's answer must be feasible under the same base
        seed, served from the layout cache the sweep will then hit."""
        topo = Topology.ring(512)
        r = tester.choose_radius(topo, rng=4, start=2, fast_path=True)
        runner = LocalTrialRunner.build(tester, topo, r, base_seed=4)
        assert runner.layout is LocalLayout.build(topo, r, base_seed=4)
        assert runner.params.samples_per_node <= runner.layout.min_catchment

    def test_scalar_and_fast_raise_on_infeasible_network(self):
        small = LocalUniformityTester(n=1_000_000, eps=0.5, p=1 / 3)
        for fast_path in (False, True):
            with pytest.raises(InfeasibleParametersError):
                small.choose_radius(
                    Topology.ring(8), rng=0, fast_path=fast_path
                )

    def test_fast_path_rejects_generator(self, tester):
        with pytest.raises(ParameterError, match="seed-like"):
            tester.choose_radius(
                Topology.ring(512), rng=np.random.default_rng(1),
                fast_path=True,
            )
