"""Tests for the (delta, alpha)-gap abstractions (Definition 1)."""

from __future__ import annotations

import pytest

from repro.core import CentralizedTester, CollisionGapTester, GapGuarantee, GapSpec
from repro.core.baselines import ChiSquareTester, CollisionCountTester
from repro.exceptions import ParameterError


class TestGapSpec:
    def test_derived_quantities(self):
        spec = GapSpec(delta=0.1, alpha=1.5, eps=0.5)
        assert spec.uniform_reject_bound == pytest.approx(0.1)
        assert spec.far_reject_bound == pytest.approx(0.15)
        assert spec.rejection_gap == pytest.approx(0.05)

    def test_alpha_must_exceed_one(self):
        with pytest.raises(ParameterError):
            GapSpec(delta=0.1, alpha=1.0, eps=0.5)

    def test_delta_range(self):
        with pytest.raises(ParameterError):
            GapSpec(delta=0.0, alpha=1.5, eps=0.5)
        with pytest.raises(ParameterError):
            GapSpec(delta=1.0, alpha=1.5, eps=0.5)

    def test_unsatisfiable_product(self):
        with pytest.raises(ParameterError):
            GapSpec(delta=0.9, alpha=1.5, eps=0.5)

    def test_eps_range(self):
        with pytest.raises(ParameterError):
            GapSpec(delta=0.1, alpha=1.2, eps=2.5)


class TestGapGuarantee:
    def test_spec_roundtrip(self):
        g = GapGuarantee(
            delta=0.05, alpha=1.4, eps=0.8, samples=30, gamma=0.6,
            in_paper_regime=True,
        )
        spec = g.spec
        assert spec.delta == 0.05 and spec.alpha == 1.4 and spec.eps == 0.8


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "tester",
        [
            CollisionGapTester(n=1000, s=5),
            CollisionCountTester(n=1000, s=50, eps=0.5),
            ChiSquareTester(n=1000, s=50, eps=0.5),
        ],
    )
    def test_runtime_checkable(self, tester):
        assert isinstance(tester, CentralizedTester)
        assert tester.samples_required >= 1
