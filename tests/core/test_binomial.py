"""Tests for exact binomial tails and threshold separation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.binomial import (
    binom_cdf,
    binom_logpmf,
    binom_sf,
    find_separating_threshold,
    separation_error,
)
from repro.exceptions import ParameterError


class TestPmf:
    def test_sums_to_one(self):
        n, p = 30, 0.3
        logs = binom_logpmf(np.arange(n + 1), n, p)
        assert np.exp(logs).sum() == pytest.approx(1.0)

    def test_known_value(self):
        # Bin(4, 0.5) at 2 = 6/16.
        assert math.exp(binom_logpmf(np.array([2]), 4, 0.5)[0]) == pytest.approx(
            6 / 16
        )

    def test_out_of_range_is_zero(self):
        logs = binom_logpmf(np.array([-1, 11]), 10, 0.5)
        assert np.all(np.isneginf(logs))

    def test_degenerate_p(self):
        assert math.exp(binom_logpmf(np.array([0]), 5, 0.0)[0]) == 1.0
        assert math.exp(binom_logpmf(np.array([5]), 5, 1.0)[0]) == 1.0


class TestTails:
    def test_sf_cdf_complement(self):
        n, p = 40, 0.2
        for t in (0, 5, 12, 40):
            assert binom_sf(t, n, p) + binom_cdf(t - 1, n, p) == pytest.approx(1.0)

    def test_sf_boundaries(self):
        assert binom_sf(0, 10, 0.5) == 1.0
        assert binom_sf(11, 10, 0.5) == 0.0

    def test_cdf_boundaries(self):
        assert binom_cdf(-1, 10, 0.5) == 0.0
        assert binom_cdf(10, 10, 0.5) == 1.0

    def test_against_monte_carlo(self):
        n, p, t = 100, 0.07, 12
        rng = np.random.default_rng(0)
        draws = rng.binomial(n, p, size=200_000)
        assert binom_sf(t, n, p) == pytest.approx((draws >= t).mean(), abs=0.003)

    def test_large_n_stable(self):
        val = binom_sf(600, 1_000_000, 0.0005)
        assert 0.0 <= val <= 1.0
        assert not math.isnan(val)


class TestThresholdSeparation:
    def test_separates_well_spread_binomials(self):
        t = find_separating_threshold(1000, 0.05, 0.15, 1 / 3)
        assert t is not None
        err_lo, err_hi = separation_error(1000, 0.05, 0.15, t)
        assert err_lo <= 1 / 3 and err_hi <= 1 / 3

    def test_none_when_too_close(self):
        assert find_separating_threshold(50, 0.10, 0.101, 0.05) is None

    def test_threshold_between_means(self):
        trials, p_lo, p_hi = 2000, 0.02, 0.08
        t = find_separating_threshold(trials, p_lo, p_hi, 1 / 3)
        assert trials * p_lo < t < trials * p_hi + 1

    def test_monotone_in_trials(self):
        # More trials should only make separation easier.
        assert find_separating_threshold(200, 0.05, 0.09, 0.05) is None
        assert find_separating_threshold(2000, 0.05, 0.09, 0.05) is not None

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            find_separating_threshold(0, 0.1, 0.2, 0.3)
        with pytest.raises(ParameterError):
            find_separating_threshold(10, 0.3, 0.2, 0.3)
        with pytest.raises(ParameterError):
            find_separating_threshold(10, 0.1, 0.2, 0.0)
