"""Tests for AND-of-m gap amplification (Section 3.2.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CollisionGapTester,
    GapSpec,
    RepeatedAndTester,
    amplified_gap,
    repetitions_for_gap,
)
from repro.exceptions import ParameterError


class TestRepetitionsForGap:
    def test_exact_logarithm(self):
        # alpha^m >= target with the smallest such m.
        m = repetitions_for_gap(1.2, 2.7)
        assert 1.2 ** m >= 2.7 > 1.2 ** (m - 1)

    def test_target_below_one_gives_single(self):
        assert repetitions_for_gap(1.5, 0.9) == 1

    def test_matches_paper_scaling(self):
        # m = Theta(C_p / eps^2): halving eps quadruples m (roughly).
        m1 = repetitions_for_gap(1 + 0.8**2 / 2, 2.7)
        m2 = repetitions_for_gap(1 + 0.4**2 / 2, 2.7)
        assert 2.5 <= m2 / m1 <= 6

    def test_invalid_alpha(self):
        with pytest.raises(ParameterError):
            repetitions_for_gap(1.0, 2.0)


class TestAmplifiedGap:
    def test_powers(self):
        spec = GapSpec(delta=0.1, alpha=1.3, eps=0.5)
        amp = amplified_gap(spec, 3)
        assert amp.delta == pytest.approx(0.1**3)
        assert amp.alpha == pytest.approx(1.3**3)
        assert amp.eps == 0.5

    def test_identity_at_one(self):
        spec = GapSpec(delta=0.1, alpha=1.3, eps=0.5)
        assert amplified_gap(spec, 1) == spec

    def test_invalid_m(self):
        with pytest.raises(ParameterError):
            amplified_gap(GapSpec(delta=0.1, alpha=1.3, eps=0.5), 0)


class TestRepeatedAndTester:
    def test_sample_accounting(self):
        base = CollisionGapTester(n=1000, s=7)
        rep = RepeatedAndTester(base=base, m=4)
        assert rep.samples_required == 28

    def test_rejects_iff_all_batches_reject(self):
        base = CollisionGapTester(n=1000, s=3)
        rep = RepeatedAndTester(base=base, m=2)
        colliding = [5, 5, 6]
        distinct = [1, 2, 3]
        assert not rep.decide(np.array(colliding + colliding))  # both reject
        assert rep.decide(np.array(colliding + distinct))       # one accepts
        assert rep.decide(np.array(distinct + distinct))

    def test_batch_size_checked(self):
        base = CollisionGapTester(n=1000, s=3)
        rep = RepeatedAndTester(base=base, m=2)
        with pytest.raises(ParameterError):
            rep.decide(np.arange(5))

    def test_statistical_amplification(self):
        """m repetitions push the uniform rejection rate to ~delta^m."""
        from repro.distributions import uniform

        n, s, m, trials = 500, 15, 2, 6000
        base = CollisionGapTester(n=n, s=s)
        rep = RepeatedAndTester(base=base, m=m)
        dist = uniform(n)
        samples = dist.sample_matrix(trials, rep.samples_required, rng=0)
        rejects = sum(not rep.decide(row) for row in samples)
        single_delta = base.delta
        expected = single_delta**m  # ~0.044 at these numbers
        assert rejects / trials == pytest.approx(expected, abs=0.02)
