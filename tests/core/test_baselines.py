"""Tests for the centralized baseline testers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ChiSquareTester, CollisionCountTester, EmpiricalL1Tester
from repro.core.baselines import count_collisions, histogram
from repro.distributions import far_family, uniform
from repro.exceptions import ParameterError


class TestHelpers:
    def test_count_collisions_pairs(self):
        # [1,1,1] has C(3,2)=3 colliding pairs.
        assert count_collisions(np.array([1, 1, 1]), 5) == 3

    def test_count_collisions_none(self):
        assert count_collisions(np.array([0, 1, 2]), 5) == 0

    def test_count_collisions_empty(self):
        assert count_collisions(np.array([], dtype=int), 5) == 0

    def test_histogram_domain_checked(self):
        with pytest.raises(ParameterError):
            histogram(np.array([7]), 5)


def _error_rates(tester, n, eps, trials, seed):
    u = uniform(n)
    f = far_family("paninski", n, eps, rng=seed)
    s = tester.samples_required
    err_u = sum(
        not tester.decide(u.sample(s, rng=1000 * seed + t)) for t in range(trials)
    ) / trials
    err_f = sum(
        tester.decide(f.sample(s, rng=2000 * seed + t)) for t in range(trials)
    ) / trials
    return err_u, err_f


class TestCollisionCountTester:
    def test_standard_budget_shape(self):
        t = CollisionCountTester.with_standard_budget(10_000, 0.5)
        assert t.s == pytest.approx(3 * 100 / 0.25, abs=2)

    def test_constant_error_at_standard_budget(self):
        t = CollisionCountTester.with_standard_budget(2_000, 0.8)
        err_u, err_f = _error_rates(t, 2_000, 0.8, trials=60, seed=3)
        assert err_u <= 1 / 3
        assert err_f <= 1 / 3

    def test_threshold_between_expectations(self):
        t = CollisionCountTester(n=1000, s=100, eps=0.6)
        pairs = 100 * 99 / 2
        assert pairs / 1000 < t.collision_threshold < pairs * (1 + 0.36) / 1000

    def test_batch_size_checked(self):
        t = CollisionCountTester(n=100, s=10, eps=0.5)
        with pytest.raises(ParameterError):
            t.decide(np.arange(9))


class TestChiSquareTester:
    def test_statistic_unbiased_zero_under_uniform(self):
        t = ChiSquareTester(n=500, s=200, eps=0.5)
        u = uniform(500)
        stats = [t.statistic(u.sample(200, rng=i)) for i in range(300)]
        # E[Z] = 0 under uniform; normalised mean should be near zero.
        assert abs(np.mean(stats)) < 3 * np.std(stats) / np.sqrt(len(stats)) + 1e-9

    def test_statistic_mean_matches_theory_for_far(self):
        n, s, eps = 500, 200, 0.8
        t = ChiSquareTester(n=n, s=s, eps=eps)
        f = far_family("paninski", n, eps, rng=1)
        stats = [t.statistic(f.sample(s, rng=100 + i)) for i in range(300)]
        expected = s * (s - 1) * eps**2 / n
        assert np.mean(stats) == pytest.approx(expected, rel=0.25)

    def test_constant_error_at_standard_budget(self):
        t = ChiSquareTester.with_standard_budget(2_000, 0.8)
        err_u, err_f = _error_rates(t, 2_000, 0.8, trials=60, seed=5)
        assert err_u <= 1 / 3
        assert err_f <= 1 / 3


class TestEmpiricalL1Tester:
    def test_needs_linear_samples(self):
        t = EmpiricalL1Tester.with_standard_budget(1000, 0.5)
        assert t.s >= 1000  # linear in n -- the point of the comparison

    def test_correct_at_linear_budget(self):
        t = EmpiricalL1Tester.with_standard_budget(300, 0.8)
        err_u, err_f = _error_rates(t, 300, 0.8, trials=40, seed=7)
        assert err_u <= 1 / 3
        assert err_f <= 1 / 3

    def test_fails_at_sublinear_budget(self):
        """With s ~ sqrt(n) the empirical L1 is ~ saturated: everything far."""
        n, eps = 10_000, 0.8
        t = EmpiricalL1Tester(n=n, s=200, eps=eps)
        u = uniform(n)
        rejected = sum(
            not t.decide(u.sample(200, rng=i)) for i in range(30)
        )
        assert rejected == 30  # rejects uniform every time: unusable
