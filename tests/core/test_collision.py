"""Tests for the single-collision gap tester A_delta (Section 3.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    CollisionGapTester,
    collision_free_log_probability_uniform,
    collision_free_probability_uniform,
    far_accept_upper_bound,
    gamma_slack,
    sample_size_for_delta,
    validity_region,
)
from repro.core.collision import effective_delta, has_collision
from repro.distributions import far_family, uniform
from repro.exceptions import ParameterError


class TestSampleSizeSolver:
    def test_exact_relation(self):
        # s(s-1) <= 2*delta*n < (s+1)s for the returned s.
        n, delta = 10_000, 0.05
        s = sample_size_for_delta(n, delta)
        assert s * (s - 1) <= 2 * delta * n < (s + 1) * s

    def test_minimum_two(self):
        assert sample_size_for_delta(1000, 1e-9) == 2

    def test_monotone_in_delta(self):
        sizes = [sample_size_for_delta(100_000, d) for d in (0.01, 0.05, 0.2)]
        assert sizes == sorted(sizes)

    def test_scaling_sqrt_delta_n(self):
        # s ~ sqrt(2 delta n): quadrupling n doubles s (asymptotically).
        s1 = sample_size_for_delta(100_000, 0.1)
        s2 = sample_size_for_delta(400_000, 0.1)
        assert s2 == pytest.approx(2 * s1, rel=0.05)

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            sample_size_for_delta(0, 0.1)
        with pytest.raises(ParameterError):
            sample_size_for_delta(100, 0.0)

    def test_effective_delta_never_exceeds_request(self):
        for delta in (0.013, 0.07, 0.31):
            s = sample_size_for_delta(5000, delta)
            assert effective_delta(5000, s) <= delta + 1e-12


class TestGammaSlack:
    def test_approaches_one(self):
        # gamma -> 1 as n grows at fixed delta (1/s and sqrt terms vanish).
        g_small = gamma_slack(10_000, sample_size_for_delta(10_000, 0.001), 0.9)
        g_large = gamma_slack(10_000_000, sample_size_for_delta(10_000_000, 0.001), 0.9)
        assert g_large > g_small
        assert g_large > 0.8

    def test_negative_outside_regime(self):
        # Large delta at small eps destroys the gap.
        assert gamma_slack(1000, sample_size_for_delta(1000, 0.3), 0.3) < 0

    def test_formula_matches_eq1(self):
        n, s, eps = 50_000, 40, 0.8
        delta = effective_delta(n, s)
        root = math.sqrt(2 * delta * (1 + eps**2))
        expected = 1 - 1 / s - root - (1 / s + root) / eps**2
        assert gamma_slack(n, s, eps) == pytest.approx(expected)


class TestValidityRegion:
    def test_paper_constraints(self):
        ok, _ = validity_region(10_000_000, 1e-5, 0.9)
        assert ok

    def test_delta_too_large(self):
        ok, reason = validity_region(10_000_000, 0.5, 0.9)
        assert not ok and "eps^4/64" in reason

    def test_n_too_small(self):
        ok, reason = validity_region(100, 1e-5, 0.9)
        assert not ok and "64/(eps^4 delta)" in reason


class TestExactProbabilities:
    def test_birthday_product(self):
        # n=365, s=23: the classic birthday-paradox number.
        p = collision_free_probability_uniform(365, 23)
        assert p == pytest.approx(0.4927, abs=1e-3)

    def test_markov_bound_holds(self):
        # 1 - binom(s,2)/n is a valid lower bound on the product.
        for n, s in [(1000, 10), (5000, 40), (100, 13)]:
            exact = collision_free_probability_uniform(n, s)
            markov = 1 - s * (s - 1) / (2 * n)
            assert exact >= markov - 1e-12

    def test_s_greater_than_n(self):
        assert collision_free_probability_uniform(5, 6) == 0.0

    def test_wiener_bound_vs_uniform_truth(self):
        # Lemma 3.3 with chi = 1/n upper-bounds the true no-collision prob.
        n, s = 2000, 30
        exact = collision_free_probability_uniform(n, s)
        bound = far_accept_upper_bound(1.0 / n, s)
        assert exact <= bound + 1e-12

    def test_log_space_matches_lgamma_identity(self):
        # ln prod (1 - i/n) == lgamma(n+1) - lgamma(n-s+1) - s ln n.
        for n, s in [(365, 23), (1000, 100), (50, 49)]:
            got = collision_free_log_probability_uniform(n, s)
            want = (
                math.lgamma(n + 1) - math.lgamma(n - s + 1) - s * math.log(n)
            )
            assert got == pytest.approx(want, rel=1e-12)

    def test_log_space_survives_underflow_corner(self):
        # tau^2 >> n: the linear-scale probability underflows float64 to
        # exactly 0.0, but the log stays finite and correct.
        n, s = 1000, 999
        log_p = collision_free_log_probability_uniform(n, s)
        assert math.isfinite(log_p)
        want = math.lgamma(n + 1) - math.lgamma(n - s + 1) - s * math.log(n)
        assert log_p == pytest.approx(want, rel=1e-10)
        assert collision_free_probability_uniform(n, s) == 0.0

    def test_log_space_edges(self):
        assert collision_free_log_probability_uniform(10, 0) == 0.0
        assert collision_free_log_probability_uniform(10, 1) == 0.0
        assert collision_free_log_probability_uniform(5, 6) == -math.inf
        with pytest.raises(ParameterError, match="domain"):
            collision_free_log_probability_uniform(0, 3)
        with pytest.raises(ParameterError, match="s must be"):
            collision_free_log_probability_uniform(10, -1)


class TestCollisionDetection:
    def test_no_collision(self):
        assert not has_collision(np.array([1, 2, 3, 4]))

    def test_with_collision(self):
        assert has_collision(np.array([1, 2, 3, 2]))

    def test_single_element(self):
        assert not has_collision(np.array([7]))


class TestTesterObject:
    def test_decide_polarity(self):
        t = CollisionGapTester(n=100, s=3)
        assert t.decide(np.array([1, 2, 3]))      # distinct -> accept
        assert not t.decide(np.array([1, 2, 1]))  # collision -> reject

    def test_wrong_batch_size_raises(self):
        t = CollisionGapTester(n=100, s=3)
        with pytest.raises(ParameterError):
            t.decide(np.array([1, 2]))

    def test_guarantee_in_regime(self):
        t = CollisionGapTester.from_delta(50_000_000, 1e-5)
        g = t.guarantee(0.9)
        assert g.in_paper_regime
        assert g.alpha > 1 + 0.4 * 0.81  # gamma >= 1/2 => alpha >= 1+eps^2/2

    def test_guarantee_out_of_regime_flagged(self):
        t = CollisionGapTester.from_delta(1000, 0.3)
        g = t.guarantee(0.3)
        assert not g.in_paper_regime

    def test_samples_required_protocol(self):
        t = CollisionGapTester(n=100, s=5)
        assert t.samples_required == 5


class TestStatisticalBehaviour:
    """Monte-Carlo checks of Lemma 3.4's two sides."""

    N = 20_000
    DELTA = 0.05
    EPS = 0.9
    TRIALS = 4000

    def _reject_rate(self, dist, seed):
        t = CollisionGapTester.from_delta(self.N, self.DELTA)
        samples = dist.sample_matrix(self.TRIALS, t.s, rng=seed)
        ordered = np.sort(samples, axis=1)
        return float((np.diff(ordered, axis=1) == 0).any(axis=1).mean())

    def test_completeness(self):
        rate = self._reject_rate(uniform(self.N), seed=1)
        # Pr[reject uniform] <= delta; 4000 trials give sigma ~ 0.003.
        assert rate <= self.DELTA + 0.015

    def test_soundness_gap(self):
        t = CollisionGapTester.from_delta(self.N, self.DELTA)
        far = far_family("paninski", self.N, self.EPS, rng=3)
        rate_far = self._reject_rate(far, seed=2)
        floor = (1 + t.gamma(self.EPS) * self.EPS**2) * t.delta
        assert rate_far >= floor - 0.015

    def test_far_reject_exceeds_uniform_reject(self):
        rate_u = self._reject_rate(uniform(self.N), seed=4)
        far = far_family("heavy", self.N, self.EPS, rng=5)
        rate_f = self._reject_rate(far, seed=6)
        assert rate_f > rate_u
