"""Tests for the Theorem 1.1 / 1.2 parameter solvers."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    and_rule_parameters,
    cp_constant,
    threshold_parameters,
)
from repro.core.params import threshold_parameters_exact
from repro.exceptions import InfeasibleParametersError, ParameterError


class TestCpConstant:
    def test_value_at_one_third(self):
        # The paper: C_{1/3} ~ 2.7.
        assert cp_constant(1 / 3) == pytest.approx(2.7095, abs=1e-3)

    def test_monotone_decreasing_in_p(self):
        assert cp_constant(0.1) > cp_constant(0.3) > cp_constant(0.45)

    def test_invalid_p(self):
        with pytest.raises(ParameterError):
            cp_constant(0.0)


class TestThresholdSolver:
    def test_feasible_instance(self):
        params = threshold_parameters(50_000, 20_000, 0.9)
        assert params.s >= 2
        assert params.threshold >= 1
        assert params.gamma > 0
        assert params.eta_uniform < params.threshold < params.eta_far

    def test_error_bounds_below_budget(self):
        params = threshold_parameters(50_000, 20_000, 0.9)
        assert params.completeness_error_bound <= 1 / 3
        assert params.soundness_error_bound <= 1 / 3

    def test_samples_scale_as_inverse_sqrt_k(self):
        s_small = threshold_parameters(50_000, 20_000, 0.9).s
        s_large = threshold_parameters(50_000, 80_000, 0.9).s
        assert s_large == pytest.approx(s_small / 2, abs=2)

    def test_samples_scale_as_sqrt_n(self):
        s1 = threshold_parameters(50_000, 40_000, 0.9).s
        s2 = threshold_parameters(200_000, 40_000, 0.9).s
        assert s2 == pytest.approx(2 * s1, rel=0.2)

    def test_infeasible_when_n_too_small(self):
        with pytest.raises(InfeasibleParametersError):
            threshold_parameters(100, 1000, 0.5)

    def test_delta_matches_s(self):
        params = threshold_parameters(50_000, 20_000, 0.9)
        assert params.delta == pytest.approx(
            params.s * (params.s - 1) / (2 * params.n)
        )

    def test_node_tester_buildable(self):
        params = threshold_parameters(50_000, 20_000, 0.9)
        tester = params.build_node_tester()
        assert tester.s == params.s

    def test_slack_validation(self):
        with pytest.raises(ParameterError):
            threshold_parameters(50_000, 20_000, 0.9, slack=0.5)

    def test_per_node_cost_beats_centralized(self):
        """The headline: s_per_node << sqrt(n)/eps^2 for large k."""
        n, k, eps = 50_000, 40_000, 0.9
        params = threshold_parameters(n, k, eps)
        centralized = math.sqrt(n) / eps**2
        assert params.s < centralized / 10


class TestThresholdSolverExact:
    def test_dominates_chernoff(self):
        """Exact tails never need more samples than the Eq. (5) window."""
        chernoff = threshold_parameters(50_000, 20_000, 0.9)
        exact = threshold_parameters_exact(50_000, 20_000, 0.9)
        assert exact.s <= chernoff.s

    def test_feasible_at_smaller_k(self):
        # Chernoff is infeasible at k = 2000 (see the scaling tests); the
        # exact solver is not.
        with pytest.raises(InfeasibleParametersError):
            threshold_parameters(50_000, 2_000, 0.9)
        params = threshold_parameters_exact(50_000, 2_000, 0.9)
        assert params.s >= 2

    def test_statistically_valid(self):
        """The exact-window network delivers its error guarantee."""
        from repro.distributions import far_family, uniform
        from repro.zeroround.network import collision_reject_flags

        params = threshold_parameters_exact(20_000, 4_000, 0.9)
        u, f = uniform(20_000), far_family("paninski", 20_000, 0.9, rng=0)
        wrong_u = sum(
            int(collision_reject_flags(u, params.k, params.s, rng=i).sum())
            >= params.threshold
            for i in range(15)
        )
        wrong_f = sum(
            int(collision_reject_flags(f, params.k, params.s, rng=50 + i).sum())
            < params.threshold
            for i in range(15)
        )
        assert wrong_u <= 8 and wrong_f <= 8

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleParametersError):
            threshold_parameters_exact(10_000_000, 10, 0.3)


class TestAndRuleSolver:
    def test_feasible_instance(self):
        params = and_rule_parameters(50_000, 1024, 1.0, p=0.45)
        assert params.m >= 1 and params.s_per_repetition >= 2
        assert params.samples_per_node == params.m * params.s_per_repetition
        assert params.gamma > 0

    def test_network_error_bounds(self):
        params = and_rule_parameters(50_000, 1024, 1.0, p=0.45)
        assert params.network_error_uniform <= 0.45 + 1e-9
        assert params.network_error_far <= 0.45 + 1e-9

    def test_completeness_budget_exact(self):
        params = and_rule_parameters(50_000, 1024, 1.0, p=0.45)
        assert params.delta_node == pytest.approx(1 - 0.55 ** (1 / 1024))

    def test_infeasible_at_small_k(self):
        # AND-of-m amplification cannot reach constant rejection with few
        # nodes: each node would need a constant-probability alarm, which
        # the weak collision signal cannot provide.
        with pytest.raises(InfeasibleParametersError):
            and_rule_parameters(50_000, 4, 0.9, p=1 / 3)

    def test_one_third_error_needs_large_k(self):
        params = and_rule_parameters(1_000_000, 16_384, 1.0, p=1 / 3)
        assert params.m >= 2  # the gap must be amplified at this C_p

    def test_soundness_inequality_holds(self):
        params = and_rule_parameters(50_000, 1024, 1.0, p=0.45)
        assert params.far_reject_per_node >= params.far_reject_needed - 1e-12

    def test_threshold_beats_and_rule(self):
        """E3's headline comparison at a common configuration."""
        n, k, eps = 1_000_000, 16_384, 1.0
        and_params = and_rule_parameters(n, k, eps, p=1 / 3)
        thr_params = threshold_parameters(n, k, eps, p=1 / 3)
        assert thr_params.s < and_params.samples_per_node
