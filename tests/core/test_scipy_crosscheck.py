"""Cross-validation against scipy (an independent implementation).

Our binomial tails and Wilson intervals are hand-rolled (log-space
lgamma sums) so the core library has no scipy dependency; scipy is
available in the test environment, making it a free referee.  Any drift
between the two implementations is a bug on our side.
"""

from __future__ import annotations

import numpy as np
import pytest

scipy_stats = pytest.importorskip("scipy.stats")

from repro.core.binomial import binom_cdf, binom_logpmf, binom_sf


class TestBinomialAgainstScipy:
    @pytest.mark.parametrize("n,p", [(10, 0.5), (100, 0.07), (5000, 0.002),
                                     (37, 0.93), (1, 0.3)])
    def test_pmf_matches(self, n, p):
        ts = np.arange(0, n + 1)
        ours = np.exp(binom_logpmf(ts, n, p))
        theirs = scipy_stats.binom.pmf(ts, n, p)
        assert np.allclose(ours, theirs, atol=1e-12)

    @pytest.mark.parametrize("n,p", [(50, 0.1), (2000, 0.01), (100, 0.99)])
    def test_sf_matches(self, n, p):
        for t in (0, 1, n // 10, n // 2, n, n + 1):
            ours = binom_sf(t, n, p)
            theirs = float(scipy_stats.binom.sf(t - 1, n, p))  # P[X >= t]
            assert ours == pytest.approx(theirs, abs=1e-10)

    @pytest.mark.parametrize("n,p", [(50, 0.1), (2000, 0.01)])
    def test_cdf_matches(self, n, p):
        for t in (0, n // 10, n // 2, n):
            ours = binom_cdf(t, n, p)
            theirs = float(scipy_stats.binom.cdf(t, n, p))
            assert ours == pytest.approx(theirs, abs=1e-10)

    def test_large_n_window_clipping_harmless(self):
        """The ±40σ summation window discards < e^{-320} of mass."""
        n, p = 2_000_000, 0.0003
        t = int(n * p * 1.2)
        ours = binom_sf(t, n, p)
        theirs = float(scipy_stats.binom.sf(t - 1, n, p))
        assert ours == pytest.approx(theirs, rel=1e-9)


class TestDistancesAgainstScipy:
    def test_kl_divergence_matches_entropy(self):
        from repro.distributions import DiscreteDistribution, kl_divergence

        rng = np.random.default_rng(0)
        for _ in range(10):
            p = rng.dirichlet(np.ones(20))
            q = rng.dirichlet(np.ones(20))
            ours = kl_divergence(
                DiscreteDistribution(p), DiscreteDistribution(q)
            )
            theirs = float(scipy_stats.entropy(p, q))
            assert ours == pytest.approx(theirs, rel=1e-9)

    def test_chi_square_statistic_distribution(self):
        """Under uniform, the classical Pearson statistic over our samples
        follows scipy's chi2 distribution (KS test at 1%)."""
        from repro.distributions import uniform

        n, s, trials = 50, 500, 300
        u = uniform(n)
        stats = []
        for i in range(trials):
            counts = np.bincount(u.sample(s, rng=i), minlength=n)
            expected = s / n
            stats.append(float(((counts - expected) ** 2 / expected).sum()))
        ks = scipy_stats.kstest(stats, "chi2", args=(n - 1,))
        assert ks.pvalue > 0.01


class TestWilsonAgainstScipy:
    def test_wilson_matches_statsmodels_formula(self):
        """Cross-check Wilson against the closed form via scipy's normal
        quantile (z reproduced, not hard-coded)."""
        from repro.experiments import wilson_interval

        z = float(scipy_stats.norm.ppf(0.975))
        for fails, trials in [(3, 50), (0, 20), (49, 50)]:
            lo, hi = wilson_interval(fails, trials, z=z)
            p_hat = fails / trials
            denom = 1 + z**2 / trials
            centre = (p_hat + z**2 / (2 * trials)) / denom
            half = z * np.sqrt(
                p_hat * (1 - p_hat) / trials + z**2 / (4 * trials**2)
            ) / denom
            assert lo == pytest.approx(max(0.0, centre - half), abs=1e-12)
            assert hi == pytest.approx(min(1.0, centre + half), abs=1e-12)
