"""Tests for the closed-form theorem predictions (repro.core.bounds)."""

from __future__ import annotations

import math

import pytest

from repro.core import bounds
from repro.exceptions import ParameterError


class TestCentralized:
    def test_shape(self):
        assert bounds.centralized_sample_complexity(10_000, 1.0) == pytest.approx(100)
        assert bounds.centralized_sample_complexity(10_000, 0.5) == pytest.approx(400)

    def test_gap_tester_constant_is_sqrt2(self):
        assert bounds.gap_tester_samples(1000, 0.5) == pytest.approx(
            math.sqrt(2 * 0.5 * 1000)
        )


class TestZeroRoundUpperBounds:
    def test_threshold_scales_inverse_sqrt_k(self):
        a = bounds.threshold_rule_samples(100_000, 1000, 0.8)
        b = bounds.threshold_rule_samples(100_000, 4000, 0.8)
        assert a / b == pytest.approx(2.0, rel=1e-6)

    def test_threshold_scales_inverse_eps_squared(self):
        a = bounds.threshold_rule_samples(100_000, 1000, 0.8)
        b = bounds.threshold_rule_samples(100_000, 1000, 0.4)
        # k*delta itself scales as 1/eps^4, so s ~ 1/eps^2; ratio ~ 4.
        assert b / a == pytest.approx(4.0, rel=0.3)

    def test_and_rule_k_dependence_is_weak(self):
        # k enters only through k^{1/(2m)}: the saving from 16x more nodes
        # is far less than the threshold rule's 4x.
        a = bounds.and_rule_samples(100_000, 1000, 0.8)
        b = bounds.and_rule_samples(100_000, 16_000, 0.8)
        assert 1.0 < a / b < 3.0

    def test_and_rule_exceeds_threshold_rule(self):
        for k in (100, 10_000):
            assert bounds.and_rule_samples(100_000, k, 0.8) > (
                bounds.threshold_rule_samples(100_000, k, 0.8)
            )

    def test_threshold_value_scales_eps_fourth(self):
        t1 = bounds.threshold_value(0.8)
        t2 = bounds.threshold_value(0.4)
        assert t2 / t1 == pytest.approx(16.0, rel=0.35)


class TestMultiRound:
    def test_congest_rounds(self):
        assert bounds.congest_rounds(10_000, 100, 1.0, diameter=10) == pytest.approx(110)

    def test_congest_package_size_shape(self):
        assert bounds.congest_package_size(10_000, 100, 1.0) == pytest.approx(100)
        assert bounds.congest_package_size(10_000, 100, 0.5) == pytest.approx(1600)

    def test_local_radius_between_bounds(self):
        r = bounds.local_radius(100_000, 10_000, 0.9)
        assert 2 <= r <= bounds.centralized_sample_complexity(100_000, 0.9) * 10


class TestLowerBounds:
    def test_f_tau_zero_at_one(self):
        assert bounds.f_tau(1.0) == pytest.approx(0.0)

    def test_f_tau_positive_elsewhere(self):
        assert bounds.f_tau(2.0) > 0
        assert bounds.f_tau(0.5) > 0

    def test_kl_separation_parameters_validated(self):
        with pytest.raises(ParameterError):
            bounds.kl_separation_lower_bound(0.3, 2.0)  # delta too large
        with pytest.raises(ParameterError):
            bounds.kl_separation_lower_bound(0.1, 20.0)  # tau >= 1/delta

    def test_smp_bounds_sandwich(self):
        n, delta, tau = 10_000, 0.05, 2.0
        lower = bounds.smp_equality_lower_bound(n, delta, tau)
        upper = bounds.smp_equality_upper_bound(n, delta, tau)
        assert lower < upper

    def test_gap_tester_lower_bound_shape(self):
        a = bounds.gap_tester_lower_bound(10_000, 0.05, 2.0)
        b = bounds.gap_tester_lower_bound(40_000, 0.05, 2.0)
        # sqrt(n)/log(n) growth: ratio just under 2.
        assert 1.5 < b / a < 2.0

    def test_zero_round_lower_bound_shape(self):
        a = bounds.zero_round_lower_bound(10_000, 100)
        b = bounds.zero_round_lower_bound(10_000, 400)
        assert a / b == pytest.approx(2.0, rel=1e-9)

    def test_sandwich_with_construction(self):
        """Cor 7.4 lower bound < sqrt(2 delta n) gap-tester cost."""
        n, delta = 100_000, 0.02
        alpha = 1.5
        lower = bounds.gap_tester_lower_bound(n, delta, alpha)
        upper = bounds.gap_tester_samples(n, delta)
        assert lower < upper
