"""Tests for the tau-token-packaging protocol (Definition 2 / Theorem 5.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import run_token_packaging, verify_packaging
from repro.exceptions import ParameterError
from repro.simulator import Topology

TOPOLOGIES = [
    Topology.line(20),
    Topology.ring(18),
    Topology.star(16),
    Topology.grid(4, 5),
    Topology.balanced_tree(2, 3),
]


def tokens_for(topo, seed=0):
    return np.random.default_rng(seed).integers(0, 500, size=topo.k)


class TestDefinition2Requirements:
    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
    @pytest.mark.parametrize("tau", [1, 2, 3, 7])
    def test_all_three_requirements(self, topo, tau):
        tokens = tokens_for(topo)
        outcomes, _ = run_token_packaging(topo, tokens, tau, rng=1)
        verify_packaging(outcomes, tokens, tau)

    def test_tau_one_packages_everything(self):
        topo = Topology.line(9)
        tokens = tokens_for(topo)
        outcomes, _ = run_token_packaging(topo, tokens, 1, rng=1)
        assert sum(len(o.packages) for o in outcomes) == topo.k

    def test_tau_equal_k(self):
        topo = Topology.star(8)
        tokens = tokens_for(topo)
        outcomes, _ = run_token_packaging(topo, tokens, topo.k, rng=1)
        total = sum(len(o.packages) for o in outcomes)
        assert total == 1  # exactly one full package

    def test_dropped_tokens_at_root_only(self):
        topo = Topology.line(11)
        tokens = tokens_for(topo)
        outcomes, _ = run_token_packaging(topo, tokens, 4, rng=1)
        for outcome in outcomes:
            if not outcome.is_root:
                assert outcome.leftover == ()

    def test_exactly_one_root(self):
        topo = Topology.grid(3, 4)
        outcomes, _ = run_token_packaging(topo, tokens_for(topo), 3, rng=1)
        assert sum(o.is_root for o in outcomes) == 1

    def test_single_node_network(self):
        topo = Topology.line(1)
        outcomes, _ = run_token_packaging(topo, [7], 3, rng=1)
        verify_packaging(outcomes, [7], 3)


class TestRoundComplexity:
    @pytest.mark.parametrize("tau", [2, 8, 16])
    def test_rounds_linear_in_d_plus_tau(self, tau):
        """Theorem 5.1: O(D + tau) rounds; our constant is ~4 for D."""
        for topo in (Topology.line(30), Topology.star(30), Topology.grid(5, 6)):
            tokens = tokens_for(topo)
            _, report = run_token_packaging(topo, tokens, tau, rng=2)
            assert report.rounds <= 4 * topo.diameter() + tau + 12

    def test_tau_term_visible_on_star(self):
        """On a D=2 star, growing tau must grow rounds ~ linearly."""
        topo = Topology.star(40)
        tokens = tokens_for(topo)
        r_small = run_token_packaging(topo, tokens, 2, rng=3)[1].rounds
        r_large = run_token_packaging(topo, tokens, 20, rng=3)[1].rounds
        assert r_large - r_small == pytest.approx(18, abs=6)

    def test_d_term_visible_on_line(self):
        """At fixed tau, line length drives rounds."""
        tau = 3
        r_short = run_token_packaging(
            Topology.line(10), list(range(10)), tau, rng=4
        )[1].rounds
        r_long = run_token_packaging(
            Topology.line(40), list(range(40)), tau, rng=4
        )[1].rounds
        assert r_long > r_short + 20


class TestCongestCompliance:
    def test_token_messages_fit_budget(self):
        topo = Topology.line(12)
        tokens = np.arange(12) + 1000  # 11-bit tokens
        _, report = run_token_packaging(topo, tokens, 3, token_bits=11, rng=5)
        assert report.max_edge_bits_per_round <= max(11, 2 * 4)

    def test_wrong_token_count_rejected(self):
        with pytest.raises(ParameterError):
            run_token_packaging(Topology.line(5), [1, 2, 3], 2)


class TestVerifier:
    def test_detects_duplicated_token(self):
        from repro.congest.token_packaging import PackagingOutcome

        # One token with value 5 exists; the package uses it twice.
        with pytest.raises(AssertionError):
            verify_packaging(
                [PackagingOutcome(packages=((5, 5),), leftover=(), is_root=True)],
                tokens=[5, 6],
                tau=2,
            )

    def test_detects_wrong_package_size(self):
        from repro.congest.token_packaging import PackagingOutcome

        with pytest.raises(AssertionError):
            verify_packaging(
                [PackagingOutcome(packages=((1, 2, 3),), leftover=(), is_root=True)],
                tokens=[1, 2, 3],
                tau=2,
            )

    def test_detects_excess_drops(self):
        from repro.congest.token_packaging import PackagingOutcome

        with pytest.raises(AssertionError):
            verify_packaging(
                [PackagingOutcome(packages=(), leftover=(), is_root=True)],
                tokens=[1, 2, 3, 4],
                tau=2,
            )
