"""Tests for the s > 1 samples-per-node generalisation (Theorem 1.4).

The paper: "We assume for simplicity that each node has a single sample;
generalizing to more samples is straightforward."  These tests check the
generalisation: c(v) counts all of a node's tokens, the packaging
invariants survive, and extra per-node samples buy feasibility at much
smaller k (total samples are what matter).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import (
    CongestUniformityTester,
    congest_parameters,
    verify_packaging,
)
from repro.congest.token_packaging import TokenPackagingProgram
from repro.distributions import far_family, uniform
from repro.exceptions import InfeasibleParametersError, ParameterError
from repro.simulator import SynchronousEngine, Topology


class TestMultiTokenPackaging:
    @pytest.mark.parametrize("s", [2, 3, 5])
    @pytest.mark.parametrize("tau", [2, 7])
    def test_invariants_hold(self, s, tau):
        topo = Topology.grid(4, 5)
        rng = np.random.default_rng(s * 10 + tau)
        token_lists = [list(rng.integers(0, 500, size=s)) for _ in range(topo.k)]
        engine = SynchronousEngine(
            topo, bandwidth_bits=16, max_rounds=5000,
            deadlock_quiet_rounds=tau + 6,
        )
        report = engine.run(
            lambda v: TokenPackagingProgram(
                node_id=v, k=topo.k, tau=tau,
                token=token_lists[v], token_bits=9,
            ),
            rng=1,
        )
        flat = [t for lst in token_lists for t in lst]
        verify_packaging(report.outputs, flat, tau)

    def test_empty_token_list_rejected(self):
        with pytest.raises(ParameterError):
            TokenPackagingProgram(node_id=0, k=2, tau=2, token=[], token_bits=4)


class TestMultiSampleTester:
    def test_extra_samples_buy_feasibility(self):
        """k=1500 is infeasible at s=1 but feasible at s=4."""
        with pytest.raises(InfeasibleParametersError):
            congest_parameters(500, 1500, 0.9, samples_per_node=1)
        params = congest_parameters(500, 1500, 0.9, samples_per_node=4)
        assert params.samples_per_node == 4
        assert params.expected_virtual_nodes >= 500

    def test_end_to_end_verdicts(self):
        tester = CongestUniformityTester.solve(500, 1500, 0.9, samples_per_node=4)
        topo = Topology.star(1500)
        wrong = 0
        for i in range(6):
            acc_u, _ = tester.run(topo, uniform(500), rng=10 + i)
            wrong += not acc_u
        far = far_family("paninski", 500, 0.9, rng=0)
        for i in range(6):
            acc_f, _ = tester.run(topo, far, rng=20 + i)
            wrong += acc_f
        assert wrong <= 4  # 12 verdicts, each <= 1/3 error

    def test_round_complexity_unchanged_in_shape(self):
        """tau at (k, s) ~ tau at (k*s, 1): only total samples matter."""
        tau_multi = congest_parameters(500, 1500, 0.9, samples_per_node=4).tau
        tau_flat = congest_parameters(500, 6000, 0.9, samples_per_node=1).tau
        assert abs(tau_multi - tau_flat) <= 2
