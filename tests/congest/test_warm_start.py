"""Tests for the CONGEST warm-start fast path and the memoized τ-solver.

Warm-started runs skip FLOOD/CHILD/COUNT by loading the cached tree
schedule; outcomes, verdicts and Monte-Carlo error rates must be exactly
those of the cold (full-protocol) runs.  The exponential-probe/bisection
τ-solver must agree with the naive linear scan on every instance.
"""

from __future__ import annotations

import pytest

from repro.congest import (
    CongestUniformityTester,
    congest_parameters,
    verify_warm_start,
    warm_start_views,
)
from repro.congest.tester import _alarm_probabilities
from repro.core.binomial import find_separating_threshold
from repro.distributions import far_family, uniform
from repro.exceptions import InfeasibleParametersError
from repro.simulator import Topology


class TestPackagingWarmStart:
    @pytest.mark.parametrize(
        "topo,tau",
        [
            (Topology.line(17), 5),
            (Topology.star(40), 3),
            (Topology.grid(6, 7), 4),
            (Topology.random_regular(48, 3, rng=5), 6),
            (Topology.ring(9), 9),
            (Topology.line(1), 2),
        ],
        ids=["line", "star", "grid", "regular", "ring", "single"],
    )
    def test_warm_equals_cold(self, topo, tau):
        check = verify_warm_start(topo, list(range(topo.k)), tau, rng=3)
        assert check.equivalent, check.mismatched_nodes
        # The fast path really skips the tree-building prefix.
        assert check.warm_report.rounds < check.cold_report.rounds
        assert check.warm_report.rounds <= tau + 2

    def test_views_cached_on_schedule(self):
        topo = Topology.grid(4, 5)
        assert warm_start_views(topo, 3) is warm_start_views(topo, 3)
        assert warm_start_views(topo, 3) is not warm_start_views(topo, 4)


class TestTesterWarmStart:
    def test_verdicts_identical(self):
        tester = CongestUniformityTester.solve(500, 1500, 0.9, samples_per_node=4)
        topo = Topology.star(1500)
        far = far_family("paninski", 500, 0.9, rng=0)
        for dist in (uniform(500), far):
            for seed in (41, 42):
                cold = tester.run(topo, dist, rng=seed, warm_start=False)
                warm = tester.run(topo, dist, rng=seed, warm_start=True)
                assert warm[0] == cold[0]
                assert warm[1].rounds < cold[1].rounds

    def test_error_rates_identical(self):
        tester = CongestUniformityTester.solve(500, 1500, 0.9, samples_per_node=4)
        topo = Topology.star(1500)
        far = far_family("paninski", 500, 0.9, rng=0)
        rate_cold = tester.estimate_error(
            topo, far, False, trials=3, rng=9, warm_start=False
        )
        rate_warm = tester.estimate_error(
            topo, far, False, trials=3, rng=9, warm_start=True
        )
        assert rate_warm == rate_cold


def _linear_scan_tau(n, k, eps, p=1.0 / 3.0, s=1):
    """The pre-PR reference solver: smallest feasible tau by linear scan."""
    total = k * s
    for tau in range(2, (total + 1) // 2 + 1):
        virtual = (total - tau + 1) // tau
        if virtual < 1:
            continue
        p_uniform, p_far = _alarm_probabilities(n, tau, eps)
        if p_far <= p_uniform:
            continue
        if find_separating_threshold(virtual, p_uniform, p_far, p) is not None:
            return tau
    return None


class TestSolverParity:
    @pytest.mark.parametrize(
        "n,k,eps",
        [
            (500, 3000, 0.9),
            (500, 6000, 0.9),
            (500, 12000, 0.9),
            (300, 6000, 0.9),
            (1200, 6000, 0.9),
            (2000, 4000, 0.8),
            (500, 1500, 0.9),
        ],
    )
    def test_matches_linear_scan(self, n, k, eps):
        expected = _linear_scan_tau(n, k, eps)
        if expected is None:
            with pytest.raises(InfeasibleParametersError):
                congest_parameters(n, k, eps)
        else:
            assert congest_parameters(n, k, eps).tau == expected

    def test_matches_linear_scan_multi_sample(self):
        expected = _linear_scan_tau(500, 1500, 0.9, s=4)
        assert expected is not None
        assert congest_parameters(500, 1500, 0.9, samples_per_node=4).tau == expected

    def test_memoized_tails_are_pure(self):
        """lru_cache on the alarm tails must not leak state across calls."""
        a = _alarm_probabilities(500, 6, 0.9)
        b = _alarm_probabilities(500, 6, 0.9)
        assert a == b
        assert congest_parameters(500, 3000, 0.9) == congest_parameters(500, 3000, 0.9)
