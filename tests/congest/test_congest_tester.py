"""Tests for the end-to-end CONGEST uniformity tester (Theorem 1.4)."""

from __future__ import annotations

import pytest

from repro.congest import CongestUniformityTester, congest_parameters
from repro.distributions import far_family, uniform
from repro.exceptions import InfeasibleParametersError, ParameterError
from repro.simulator import Topology

# Small but statistically workable configuration.
N, K, EPS = 500, 3000, 0.9


@pytest.fixture(scope="module")
def tester() -> CongestUniformityTester:
    return CongestUniformityTester.solve(N, K, EPS)


@pytest.fixture(scope="module")
def star() -> Topology:
    return Topology.star(K)


class TestParameterSolver:
    def test_tau_at_least_two(self, tester):
        assert tester.params.tau >= 2

    def test_alarm_probabilities_ordered(self, tester):
        p = tester.params
        assert 0 < p.alarm_prob_uniform < p.alarm_prob_far < 1

    def test_tau_shrinks_with_k(self):
        """tau = Theta(n/(k eps^4)): more nodes, smaller packages."""
        tau_small_k = congest_parameters(N, 3000, EPS).tau
        tau_large_k = congest_parameters(N, 12_000, EPS).tau
        assert tau_large_k <= tau_small_k

    def test_tau_grows_with_n(self):
        tau_small_n = congest_parameters(300, 6000, EPS).tau
        tau_large_n = congest_parameters(1200, 6000, EPS).tau
        assert tau_large_n >= tau_small_n

    def test_infeasible_when_too_few_samples(self):
        with pytest.raises(InfeasibleParametersError):
            congest_parameters(100_000, 50, 0.5)

    def test_threshold_for_realised_count(self, tester):
        t = tester.params.threshold_for(tester.params.expected_virtual_nodes)
        assert t >= 1


class TestProtocolExecution:
    def test_verdict_unanimous_and_correct_types(self, tester, star):
        accepted, report = tester.run(star, uniform(N), rng=0)
        assert isinstance(accepted, bool)
        assert report.halted

    def test_round_complexity(self, tester, star):
        _, report = tester.run(star, uniform(N), rng=1)
        bound = tester.params.predicted_rounds(star.diameter())
        assert report.rounds <= bound

    def test_congest_bandwidth_respected(self, tester, star):
        _, report = tester.run(star, uniform(N), rng=2)
        from repro.simulator.message import bits_for_domain, bits_for_int

        budget = max(bits_for_domain(N), 2 * bits_for_int(K))
        assert report.max_edge_bits_per_round <= budget

    def test_topology_size_checked(self, tester):
        with pytest.raises(ParameterError):
            tester.run(Topology.star(10), uniform(N), rng=0)

    def test_domain_size_checked(self, tester, star):
        with pytest.raises(ParameterError):
            tester.run(star, uniform(N + 1), rng=0)


class TestStatisticalGuarantees:
    def test_uniform_mostly_accepted(self, tester, star):
        err = tester.estimate_error(star, uniform(N), True, trials=9, rng=3)
        assert err <= 4 / 9  # budget 1/3 plus Monte-Carlo slack

    def test_far_mostly_rejected(self, tester, star):
        far = far_family("paninski", N, EPS, rng=4)
        err = tester.estimate_error(star, far, False, trials=9, rng=5)
        assert err <= 4 / 9

    def test_works_on_high_diameter_topology(self, tester):
        """One full run on the line (D = k-1): the paper's worst case.

        This is the suite's single line-topology execution (it takes
        ~4(k-1) rounds); the verdict itself carries the usual <= 1/3
        error, so only the round bound is asserted unconditionally.
        """
        line = Topology.line(K)
        far = far_family("paninski", N, EPS, rng=6)
        accepted_far, report = tester.run(line, far, rng=7)
        assert report.rounds <= tester.params.predicted_rounds(line.diameter())
        assert report.halted
