"""Fault-plane replay vs the engine: bit-identity per seed.

The contract under test (see ``repro/congest/fault_plane.py``): for any
replayable batch of per-trial-keyed :class:`FaultPlan`\\ s, the
vectorized replay reproduces ``tester.run(topology, dist, rng=seed,
faults=plan)`` exactly — verdict, agreement, and the give-up counters
(``shortfall`` / ``missing_subtrees`` / ``unheard``) — with no engine
runs at build time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest.fault_plane import HardenedFaultPlane
from repro.congest.hardened import HardenedCongestTester, PhaseSchedule
from repro.distributions import far_family, uniform
from repro.exceptions import ParameterError, SimulationError
from repro.experiments.robustness import _crash_plan, make_topology
from repro.simulator.faults import DelayDistribution, FaultPlan

N, K, EPS, P, S = 200, 60, 0.9, 1.0 / 3.0, 64
BASE = 2018


@pytest.fixture(scope="module")
def tester():
    return HardenedCongestTester.solve(N, K, EPS, p=P, samples_per_node=S)


@pytest.fixture(scope="module")
def dist_u():
    return uniform(N)


@pytest.fixture(scope="module")
def dist_far():
    return far_family("paninski", N, EPS, rng=BASE)


def _keyed_plans(trials: int) -> list:
    """A per-trial-keyed batch mixing fault-free, drops, crashes, both
    — the E14 sweep's plan shape."""
    plans = []
    for t in range(trials):
        drop = (0.0, 0.05, 0.1, 0.0)[t % 4]
        crashes = _crash_plan(K, 0.1, 30, BASE, t) if t % 2 else {}
        plans.append(
            FaultPlan(seed=BASE * 1_000_003 + t, drop_prob=drop,
                      crashes=crashes)
        )
    return plans


class TestEngineParity:
    @pytest.mark.parametrize("topo_name", ["star", "ring", "grid"])
    def test_verdicts_and_counters_match_engine(
        self, tester, dist_u, dist_far, topo_name
    ):
        topo = make_topology(topo_name, K)
        plans = _keyed_plans(4)
        seeds = [BASE + t for t in range(len(plans))]
        plane = HardenedFaultPlane.build(tester, topo, plans)
        for dist in (dist_u, dist_far):
            score = plane.score_seeds(dist, seeds)
            for i, (plan, seed) in enumerate(zip(plans, seeds)):
                res = tester.run(topo, dist, rng=seed, faults=plan)
                assert score.verdicts[i] is res.verdict
                assert score.agreement[i] == res.agreement
                assert int(plane.trials.shortfall[i]) == res.shortfall
                assert (
                    int(plane.trials.missing_subtrees[i])
                    == res.missing_subtrees
                )
                assert int(plane.trials.unheard[i]) == res.unheard
                # check_against_engine packages the same comparison.
                plane.trials.check_against_engine(
                    i, res, score.verdicts[i], float(score.agreement[i])
                )

    def test_edge_overrides_and_heavy_loss(self, tester, dist_far):
        """Per-edge drop overrides and loss heavy enough to force
        give-ups still replay exactly."""
        topo = make_topology("ring", K)
        plans = [
            FaultPlan(seed=5, drop_prob=0.2, edge_drop={(0, 1): 1.0}),
            FaultPlan(seed=6, drop_prob=0.3,
                      crashes=_crash_plan(K, 0.2, 30, 7, 1)),
        ]
        plane = HardenedFaultPlane.build(tester, topo, plans)
        score = plane.score_seeds(dist_far, [41, 42])
        for i, (plan, seed) in enumerate(zip(plans, [41, 42])):
            res = tester.run(topo, dist_far, rng=seed, faults=plan)
            plane.trials.check_against_engine(
                i, res, score.verdicts[i], float(score.agreement[i])
            )

    def test_divergence_raises_simulation_error(self, tester, dist_u):
        topo = make_topology("star", K)
        plan = FaultPlan(seed=9, drop_prob=0.05)
        plane = HardenedFaultPlane.build(tester, topo, [plan])
        score = plane.score_seeds(dist_u, [BASE])
        res = tester.run(topo, dist_u, rng=BASE, faults=plan)
        with pytest.raises(SimulationError, match="bit-identity"):
            plane.trials.check_against_engine(
                0, res, score.verdicts[0], float(score.agreement[0]) + 0.5
            )


class TestSweepFastPath:
    def test_faulty_grid_matches_engine_sweep(self):
        """robustness_sweep(fast_path=True) reproduces the engine sweep
        column for column on a grid with drops AND crashes."""
        from repro.experiments import robustness_sweep

        kwargs = dict(
            n=N, k=K, eps=EPS, p=P, samples_per_node=S, topology="star",
            drop_probs=(0.0, 0.05), crash_fractions=(0.0, 0.1), trials=2,
            base_seed=BASE,
        )
        engine = robustness_sweep(**kwargs)
        fast = robustness_sweep(**kwargs, fast_path=True, engine_check=1.0)
        for a, b in zip(engine, fast):
            assert (a.error_uniform, a.error_far, a.no_verdict) == (
                b.error_uniform, b.error_far, b.no_verdict
            )
            assert a.mean_rounds == b.mean_rounds
            assert a.mean_drops == b.mean_drops
            assert a.mean_missing_subtrees == b.mean_missing_subtrees
            assert a.mean_shortfall == b.mean_shortfall
            assert a.mean_unheard == b.mean_unheard
            assert a.mean_agreement == b.mean_agreement
        assert all(pt.engine_trials == pt.trials for pt in fast)
        assert all(pt.fast_path_seconds > 0.0 for pt in fast)

    def test_engine_check_zero_skips_engine(self):
        from repro.experiments import robustness_sweep

        points = robustness_sweep(
            n=N, k=K, eps=EPS, p=P, samples_per_node=S, topology="star",
            drop_probs=(0.05,), crash_fractions=(0.0,), trials=2,
            base_seed=BASE, fast_path=True, engine_check=0.0,
        )
        (pt,) = points
        assert pt.engine_trials == 0
        assert pt.mean_rounds == 0.0 and pt.mean_drops == 0.0
        assert pt.engine_seconds < pt.fast_path_seconds


class TestReplayabilityContract:
    def test_delay_plans_rejected(self, tester):
        topo = make_topology("star", K)
        plan = FaultPlan(
            seed=1, delay=DelayDistribution(outcomes=((2, 0.5),))
        )
        with pytest.raises(ParameterError, match="delay"):
            HardenedFaultPlane.build(tester, topo, [plan])

    def test_crash_inside_decide_window_rejected(self, tester):
        """Crashes after packaging but before the final halt are outside
        the replay's validity window."""
        topo = make_topology("star", K)
        sch = PhaseSchedule.build(
            topo.diameter_upper_bound(), tester.params.tau, tester.policy
        )
        plan = FaultPlan(seed=1, crashes={0: sch.tokens_end + 1})
        with pytest.raises(ParameterError, match="crash"):
            HardenedFaultPlane.build(tester, topo, [plan])
        # ... but crashing after every node has halted is fine.
        late = FaultPlan(seed=1, crashes={0: sch.decide_end + 1})
        HardenedFaultPlane.build(tester, topo, [late])

    def test_seed_count_mismatch_rejected(self, tester, dist_u):
        topo = make_topology("star", K)
        plane = HardenedFaultPlane.build(
            tester, topo, [FaultPlan(seed=1), FaultPlan(seed=2)]
        )
        with pytest.raises(ParameterError, match="seed"):
            plane.score_seeds(dist_u, [1, 2, 3])

    def test_sample_batch_shape_rejected(self, tester):
        topo = make_topology("star", K)
        plane = HardenedFaultPlane.build(tester, topo, [FaultPlan(seed=1)])
        with pytest.raises(ParameterError, match="sample batch"):
            plane.trials.score(np.zeros((2, 4)))
