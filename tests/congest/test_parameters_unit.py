"""Unit tests for CONGEST parameter internals."""

from __future__ import annotations

import pytest

from repro.congest import congest_parameters
from repro.congest.tester import _alarm_probabilities
from repro.core.collision import (
    collision_free_probability_uniform,
    far_accept_upper_bound,
)
from repro.exceptions import InfeasibleParametersError, ParameterError


class TestAlarmProbabilities:
    def test_uniform_side_is_exact_complement(self):
        n, tau = 1000, 10
        p_u, _ = _alarm_probabilities(n, tau, 0.8)
        assert p_u == pytest.approx(
            1.0 - collision_free_probability_uniform(n, tau)
        )

    def test_far_side_uses_lemma_33(self):
        n, tau, eps = 1000, 10, 0.8
        _, p_f = _alarm_probabilities(n, tau, eps)
        assert p_f == pytest.approx(
            1.0 - far_accept_upper_bound((1 + eps**2) / n, tau)
        )

    def test_ordering_in_useful_regime(self):
        p_u, p_f = _alarm_probabilities(2000, 8, 0.9)
        assert 0 < p_u < p_f < 1


class TestThresholdFor:
    def test_scales_with_virtual_nodes(self):
        params = congest_parameters(500, 5000, 0.9)
        t_small = params.threshold_for(600)
        t_large = params.threshold_for(1200)
        assert t_large > t_small

    def test_infeasible_count_raises(self):
        params = congest_parameters(500, 5000, 0.9)
        with pytest.raises(InfeasibleParametersError):
            params.threshold_for(3)  # 3 packages cannot separate the tails

    def test_predicted_rounds_monotone_in_diameter(self):
        params = congest_parameters(500, 5000, 0.9)
        assert params.predicted_rounds(100) > params.predicted_rounds(2)


class TestSolverValidation:
    def test_k_too_small(self):
        with pytest.raises(ParameterError):
            congest_parameters(100, 1, 0.9)

    def test_bad_samples_per_node(self):
        with pytest.raises(ParameterError):
            congest_parameters(100, 10, 0.9, samples_per_node=0)
