"""Tests for the fault-hardened packaging and tester protocols."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.congest import (
    HardenedCongestTester,
    PhaseSchedule,
    RetryPolicy,
    run_hardened_packaging,
    verify_packaging,
)
from repro.distributions import far_family, uniform
from repro.exceptions import ParameterError
from repro.experiments import make_topology
from repro.simulator import FaultPlan, Topology

# The smallest Theorem 1.4 instance feasible at p = 1/3 with a
# benchmark-sized network; rng=4 is a pinned seed whose verdicts are
# correct on star/ring/grid both fault-free and at drop 0.05.
N, K, EPS, P, S = 200, 60, 0.9, 1.0 / 3.0, 64
PINNED_RNG = 4
TOPOLOGIES = ["star", "ring", "grid"]


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ParameterError, match="timeout"):
            RetryPolicy(timeout=0)
        with pytest.raises(ParameterError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_window_covers_all_attempts(self):
        policy = RetryPolicy(timeout=2, max_retries=3)
        assert policy.attempts == 4
        assert policy.window == 2 * 4 + 2


class TestPhaseSchedule:
    def test_validation(self):
        with pytest.raises(ParameterError, match="d_hint"):
            PhaseSchedule.build(0, 5, RetryPolicy())
        with pytest.raises(ParameterError, match="tau"):
            PhaseSchedule.build(4, 0, RetryPolicy())

    def test_phases_are_ordered(self):
        s = PhaseSchedule.build(6, 5, RetryPolicy())
        assert (
            0
            < s.flood_end
            < s.child_end
            < s.count_last_call
            < s.count_end
            < s.tokens_end
            < s.vote_last_call
            < s.vote_end
            < s.decide_end
        )


class TestFaultFreePackaging:
    @pytest.mark.parametrize(
        "topo",
        [Topology.star(30), Topology.ring(24), Topology.grid(5, 5)],
        ids=["star", "ring", "grid"],
    )
    def test_satisfies_definition_2(self, topo):
        tokens = list(range(topo.k))
        outcomes, report = run_hardened_packaging(topo, tokens, 5, rng=1)
        assert report.halted
        assert all(o is not None for o in outcomes)
        verify_packaging(outcomes, tokens, 5)
        # Reliable network: every give-up path stays cold.
        assert sum(o.shortfall for o in outcomes) == 0
        assert all(not o.missing_count_children for o in outcomes)
        assert all(o.claim_acked for o in outcomes if not o.is_root)
        assert sum(o.is_root for o in outcomes) == 1
        # All k tokens concentrated: floor(k / tau) full packages.
        assert sum(len(o.packages) for o in outcomes) == topo.k // 5


class TestPackagingUnderFaults:
    def test_drops_lose_but_never_duplicate_tokens(self):
        topo = Topology.star(30)
        tokens = list(range(30))
        plan = FaultPlan(seed=1, drop_prob=0.15, crashes={3: 5, 11: 9})
        outcomes, report = run_hardened_packaging(topo, tokens, 5, faults=plan, rng=1)
        assert report.drops > 0 and report.crashes == 2
        alive = [o for o in outcomes if o is not None]
        packaged = Counter()
        for o in alive:
            for pkg in o.packages:
                assert len(pkg) == 5  # partial packages never emitted
                packaged.update(pkg)
        # Give-up discards locally: a token may be lost, never doubled.
        assert not packaged - Counter(tokens)

    def test_replays_bit_identically(self):
        topo = Topology.ring(24)
        plan = FaultPlan(seed=8, drop_prob=0.1)
        runs = [
            run_hardened_packaging(
                topo, list(range(24)), 5, faults=plan, rng=2
            )
            for _ in range(2)
        ]
        assert runs[0][0] == runs[1][0]
        assert repr(runs[0][1]) == repr(runs[1][1])

    def test_token_count_mismatch_rejected(self):
        with pytest.raises(ParameterError, match="one token per node"):
            run_hardened_packaging(Topology.star(5), [1, 2], 2)


class TestHardenedTester:
    @pytest.fixture(scope="class")
    def tester(self):
        return HardenedCongestTester.solve(N, K, EPS, P, S)

    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_correct_verdicts_at_five_percent_drop(self, tester, name):
        """The acceptance contract: drop <= 0.05 still yields correct,
        unanimous verdicts on every benchmark topology."""
        topo = make_topology(name, K)
        plan = FaultPlan(seed=42, drop_prob=0.05)
        res_u = tester.run(topo, uniform(N), rng=PINNED_RNG, faults=plan)
        res_f = tester.run(
            topo,
            far_family("paninski", N, EPS, rng=0),
            rng=PINNED_RNG,
            faults=plan,
        )
        assert res_u.verdict is True
        assert res_f.verdict is False
        assert res_u.agreement == 1.0 and res_f.agreement == 1.0
        assert res_u.unheard == 0 and res_f.unheard == 0
        assert res_u.report.drops > 0

    def test_fault_free_matches_pinned_verdicts(self, tester):
        topo = make_topology("star", K)
        assert tester.run(topo, uniform(N), rng=PINNED_RNG).verdict is True
        assert (
            tester.run(
                topo, far_family("paninski", N, EPS, rng=0), rng=PINNED_RNG
            ).verdict
            is False
        )

    def test_crash_degrades_gracefully(self, tester):
        """A crashed subtree is reported, never deadlocks the run."""
        topo = make_topology("ring", K)
        plan = FaultPlan(seed=7, drop_prob=0.02, crashes={5: 30, 21: 45})
        res = tester.run(topo, uniform(N), rng=PINNED_RNG, faults=plan)
        assert res.report.crashes == 2
        assert res.outcomes[5] is None and res.outcomes[21] is None
        assert res.verdict is not None  # root survived, verdict delivered
        alive = [o for o in res.outcomes if o is not None]
        assert len(alive) == K - 2
        # Evidence lost to the crashes is visible in the counters, and the
        # root thresholds against the realised package count.
        assert res.total_packages <= (K * S) // tester.params.tau

    def test_topology_mismatch_rejected(self, tester):
        with pytest.raises(ParameterError, match="topology"):
            tester.run(Topology.star(10), uniform(N), rng=0)

    def test_distribution_mismatch_rejected(self, tester):
        with pytest.raises(ParameterError, match="distribution"):
            tester.run(make_topology("star", K), uniform(50), rng=0)
