"""Tests for the vectorised trial plane: layout replay + batched verdicts.

The load-bearing property throughout: the fast path must be
**bit-identical per seed** to the engine path — same samples, same
verdict — because the protocol's control flow never reads a token's
value.  Every test here pins some face of that contract against real
engine runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import (
    CongestTrialRunner,
    CongestUniformityTester,
    HardenedCongestTester,
    HardenedTrialRunner,
    PackagingLayout,
    RealisedLayout,
)
from repro.distributions import far_family, uniform
from repro.exceptions import ParameterError, SimulationError
from repro.experiments import make_topology
from repro.simulator import FaultPlan, Topology

# Same instance the hardened tests pin: smallest Theorem 1.4 solve
# feasible at p = 1/3 with a benchmark-sized network (tau=6, 640
# packages from 60 nodes x 64 samples).
N, K, EPS, P, S = 200, 60, 0.9, 1.0 / 3.0, 64
TOPOLOGIES = ["star", "ring", "grid"]
SEEDS = [11, 22, 33, 44]


@pytest.fixture(scope="module")
def tester():
    return CongestUniformityTester.solve(N, K, EPS, P, S)


@pytest.fixture(scope="module")
def hardened_tester():
    return HardenedCongestTester.solve(N, K, EPS, P, S)


@pytest.fixture(scope="module")
def far():
    return far_family("paninski", N, EPS, rng=0)


class TestPackagingLayout:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    @pytest.mark.parametrize("tau,s", [(3, 1), (6, 64), (5, 7)])
    def test_matches_engine_packaging(self, name, tau, s):
        """Property: simulated membership == the engine's realised
        packages, per node and in order, on every benchmark topology."""
        topo = make_topology(name, K)
        layout = PackagingLayout.from_schedule(topo, tau, s)
        check = layout.verify_layout(topo)
        assert check.equivalent, check.mismatched_nodes

    @pytest.mark.parametrize("tau,s", [(2, 1), (4, 5), (7, 3)])
    def test_partition_invariants(self, tau, s):
        """Packages + drops partition the k*s slots; |drops| < tau."""
        topo = Topology.line(23)
        layout = PackagingLayout.from_schedule(topo, tau, s)
        total = topo.k * s
        assert layout.virtual_nodes == total // tau
        assert len(layout.dropped) == total % tau
        slots = np.concatenate(
            [layout.members.ravel(), np.asarray(layout.dropped, dtype=int)]
        )
        assert sorted(slots.tolist()) == list(range(total))
        assert layout.members.shape == (layout.virtual_nodes, tau)
        assert layout.package_owner.shape == (layout.virtual_nodes,)

    def test_cached_on_schedule(self):
        topo = Topology.star(17)
        first = PackagingLayout.from_schedule(topo, 3)
        assert PackagingLayout.from_schedule(topo, 3) is first
        assert PackagingLayout.from_schedule(topo, 4) is not first

    def test_rejects_bad_parameters(self):
        topo = Topology.star(5)
        with pytest.raises(ParameterError, match="tau"):
            PackagingLayout.from_schedule(topo, 0)
        with pytest.raises(ParameterError, match="tokens_per_node"):
            PackagingLayout.from_schedule(topo, 2, 0)
        layout = PackagingLayout.from_schedule(topo, 2)
        with pytest.raises(ParameterError, match="k=5"):
            layout.verify_layout(Topology.star(6))


class TestCongestTrialRunner:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_per_seed_verdicts_match_engine(self, tester, far, name):
        """Fast-path verdict i == tester.run(..., rng=seeds[i])."""
        topo = make_topology(name, K)
        runner = CongestTrialRunner.build(tester, topo)
        for dist in (uniform(N), far):
            fast = runner.verdicts_for_seeds(dist, SEEDS)
            engine = [
                tester.run(topo, dist, rng=seed, warm_start=True)[0]
                for seed in SEEDS
            ]
            assert fast == engine

    def test_estimate_error_routes_agree(self, tester, far):
        """estimate_error(fast_path=True) == the engine route, trial by
        trial — engine_check=1.0 re-runs every trial and would raise."""
        topo = make_topology("star", K)
        fast = tester.estimate_error(
            topo, far, False, 6, rng=9, fast_path=True, engine_check=1.0
        )
        engine = tester.estimate_error(topo, far, False, 6, rng=9)
        assert fast == engine

    def test_engine_check_detects_divergence(self, tester, far):
        """A runner with a corrupted threshold must fail the check."""
        topo = make_topology("star", K)
        good = CongestTrialRunner.build(tester, topo)
        bad = CongestTrialRunner(
            tester=tester,
            topology=topo,
            layout=good.layout,
            threshold=0,  # reject everything: diverges on accepting trials
        )
        with pytest.raises(SimulationError, match="diverge"):
            bad.run_flags(uniform(N), True, 6, base_seed=9, engine_check=1.0)

    def test_engine_check_validation(self, tester, far):
        topo = make_topology("star", K)
        runner = CongestTrialRunner.build(tester, topo)
        with pytest.raises(ParameterError, match="engine_check"):
            runner.run_flags(far, False, 4, engine_check=1.5)

    def test_topology_mismatch_rejected(self, tester):
        with pytest.raises(ParameterError, match="solved for k"):
            CongestTrialRunner.build(tester, Topology.star(K + 1))


class TestHardenedTrialRunner:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    @pytest.mark.parametrize("drop", [0.0, 0.02])
    def test_pack_then_replay_matches_engine(
        self, hardened_tester, far, name, drop
    ):
        """Replaying the realised layout of one faulty run reproduces
        the engine's verdicts seed for seed (fixed plan => fixed
        layout)."""
        topo = make_topology(name, K)
        plan = FaultPlan(seed=42, drop_prob=drop)
        runner = HardenedTrialRunner.build(hardened_tester, topo, faults=plan)
        for dist in (uniform(N), far):
            fast = runner.verdicts_for_seeds(dist, SEEDS)
            engine = [
                hardened_tester.run(topo, dist, rng=seed, faults=plan).verdict
                for seed in SEEDS
            ]
            assert fast == engine

    def test_estimate_error_routes_agree(self, hardened_tester, far):
        topo = make_topology("star", K)
        plan = FaultPlan(seed=7, drop_prob=0.02)
        fast = hardened_tester.estimate_error(
            topo, far, False, 5, rng=3, faults=plan, fast_path=True,
            engine_check=1.0,
        )
        engine = hardened_tester.estimate_error(
            topo, far, False, 5, rng=3, faults=plan, fast_path=False
        )
        assert fast == engine

    def test_crashed_root_yields_no_verdict(self, hardened_tester, far):
        """A plan that kills the elected root: every replayed verdict is
        None, exactly as the engine reports."""
        topo = make_topology("star", K)
        plan = FaultPlan(seed=5, crashes={K - 1: 2})
        runner = HardenedTrialRunner.build(hardened_tester, topo, faults=plan)
        assert not runner.layout.root_alive
        assert runner.verdicts_for_seeds(far, SEEDS[:2]) == [None, None]
        engine = hardened_tester.run(topo, far, rng=SEEDS[0], faults=plan)
        assert engine.verdict is None
        # Both sides err on every trial regardless of the distribution.
        assert runner.error_rate(far, False, 4, base_seed=1) == 1.0

    def test_realised_layout_counts_surviving_votes(
        self, hardened_tester, far
    ):
        """Crashing a leaf removes exactly its packages from the counted
        layout (the root thresholds against the smaller ell)."""
        topo = make_topology("star", K)
        full = RealisedLayout.from_engine(hardened_tester, topo)
        crashed = RealisedLayout.from_engine(
            hardened_tester, topo, faults=FaultPlan(seed=3, crashes={5: 1})
        )
        assert full.root_alive and crashed.root_alive
        assert 5 in full.counted_nodes
        assert 5 not in crashed.counted_nodes
        assert crashed.counted_packages < full.counted_packages
        # Replay still matches the engine under that plan.
        runner = HardenedTrialRunner.build(
            hardened_tester, topo, faults=FaultPlan(seed=3, crashes={5: 1})
        )
        fast = runner.verdicts_for_seeds(far, SEEDS[:2])
        engine = [
            hardened_tester.run(
                topo, far, rng=seed, faults=FaultPlan(seed=3, crashes={5: 1})
            ).verdict
            for seed in SEEDS[:2]
        ]
        assert fast == engine


class TestRobustnessSweepFastPath:
    def test_fault_free_points_replayed(self):
        """fast_path sweeps reproduce the engine sweep's error columns,
        with the engine_check subset supplying the degradation stats."""
        from repro.experiments import robustness_sweep

        kwargs = dict(
            n=N, k=K, eps=EPS, p=P, samples_per_node=S, topology="star",
            drop_probs=(0.0, 0.02), crash_fractions=(0.0,), trials=3,
            base_seed=5,
        )
        engine = robustness_sweep(**kwargs)
        fast = robustness_sweep(**kwargs, fast_path=True, engine_check=1.0)
        for a, b in zip(engine, fast):
            assert (a.error_uniform, a.error_far, a.no_verdict) == (
                b.error_uniform,
                b.error_far,
                b.no_verdict,
            )
            assert a.mean_rounds == b.mean_rounds
