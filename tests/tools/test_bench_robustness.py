"""Smoke-test the robustness benchmark end to end.

Runs ``tools/bench_robustness.py --smoke`` as a subprocess (the way CI
invokes it) and checks the v2 JSON contract: the run succeeds, every
topology is swept through the fault plane with the engine cross-check,
per-point route timings are recorded, and the graceful-degradation
guarantee holds at the low-loss grid points (no lost verdicts,
unanimous agreement).
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_smoke_run_writes_valid_report(tmp_path):
    out = tmp_path / "bench.json"
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "bench_robustness.py"),
         "--smoke", "--out", str(out)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr

    payload = json.loads(out.read_text())
    assert payload["schema"] == "bench_robustness/v2"
    assert payload["smoke"] is True
    assert set(payload["points"]) == {"star", "ring", "grid"}
    for topology, points in payload["points"].items():
        assert points, topology
        for label, pt in points.items():
            assert label == (
                f"d{pt['drop_prob']:.2f}_c{pt['crash_fraction']:.2f}"
            )
            assert pt["trials"] >= 1
            # Both routes record their per-trial cost for the perf
            # trajectory; the engine subset is what the cross-check ran.
            assert pt["fast"]["trials"] == pt["trials"]
            assert pt["fast"]["ms_per_trial"] > 0.0
            assert 1 <= pt["engine"]["trials"] <= pt["trials"]
            assert pt["engine"]["ms_per_trial"] > 0.0
            # Far-side detection is robust at every swept fault rate.
            assert pt["error_far"] == 0.0, (topology, pt)
            if pt["crash_fraction"] == 0.0 and pt["drop_prob"] <= 0.05:
                assert pt["no_verdict"] == 0, (topology, pt)
                assert pt["mean_agreement"] == 1.0, (topology, pt)
        # The fault-free point really is fault-free.
        base = points["d0.00_c0.00"]
        assert base["mean_drops"] == 0.0
        assert base["mean_missing_subtrees"] == 0.0

    # The headline claim: replay beat the engine on the faulty points
    # and earned bit_identical by passing every cross-check.
    summary = payload["fault_plane"]
    assert summary["bit_identical"] is True
    assert summary["faulty_points"] >= 1
    assert summary["speedup"] > 1.0
