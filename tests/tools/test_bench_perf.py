"""Smoke-test the perf benchmark tool end to end.

Runs ``tools/bench_perf.py --smoke`` as a subprocess (the way CI and
users invoke it) and checks the JSON contract: the run succeeds, the
three engine paths agree bit for bit, and the batched path actually
beats the serial loop.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_smoke_run_writes_valid_report(tmp_path):
    out = tmp_path / "bench.json"
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "bench_perf.py"),
         "--smoke", "--trials", "1500", "--out", str(out)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr

    payload = json.loads(out.read_text())
    assert payload["schema"] == "bench_trials/v1"
    assert payload["smoke"] is True
    assert payload["workload"]["trials"] == 1500
    assert all(payload["bit_identical"].values()), payload["bit_identical"]
    # The vectorised kernel must beat the per-trial Python loop.
    assert payload["speedup_batched"] > 1.0
    assert payload["serial_seconds"] > 0
    assert payload["has_collision_us"]["sizes"]
