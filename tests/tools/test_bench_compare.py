"""Tests for the benchmark regression gate.

The compare functions are exercised directly on synthetic payloads (the
interesting logic: recursive ``*_seconds`` collection, per-trial
normalisation, tolerance maths), and the CLI end to end via ``--fresh-*``
payload files so no benchmark actually reruns.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "bench_compare", ROOT / "tools" / "bench_compare.py"
)
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


class TestCollectSeconds:
    def test_flattens_nested_seconds_fields(self):
        payload = {
            "schema": "x/v1",
            "warm_seconds": 2.0,
            "section": {"cold_seconds": 4.0, "other": 1},
            "points": [{"t_seconds": 1.0}, {"t_seconds": 3.0}],
        }
        fields = bench_compare.collect_seconds(payload)
        assert fields["warm_seconds"] == (2.0, 1.0)
        assert fields["section.cold_seconds"] == (4.0, 1.0)
        assert fields["points[0].t_seconds"] == (1.0, 1.0)
        assert fields["points[1].t_seconds"] == (3.0, 1.0)

    def test_trials_scale_from_sibling_and_workload(self):
        payload = {
            "workload": {"trials": 100},
            "serial_seconds": 50.0,
            "e6": {"trials": 10, "warm_seconds": 5.0},
            "e5": {"repeats": 4, "cold_seconds": 2.0},
        }
        fields = bench_compare.collect_seconds(payload)
        # Top-level timing scales by workload.trials; sections by their
        # own trials/repeats (overriding the inherited scale).
        assert fields["serial_seconds"] == (50.0, 100.0)
        assert fields["e6.warm_seconds"] == (5.0, 10.0)
        assert fields["e5.cold_seconds"] == (2.0, 4.0)

    def test_non_seconds_fields_ignored(self):
        fields = bench_compare.collect_seconds(
            {"speedup": 3.0, "rounds": 7, "name": "x"}
        )
        assert fields == {}


class TestComparePayloads:
    def test_per_trial_normalisation_masks_trial_count_change(self):
        # Full run committed, smoke run fresh: same per-trial speed.
        committed = {"trials": 1000, "warm_seconds": 10.0}
        fresh = {"trials": 10, "warm_seconds": 0.1}
        rows, regressions = bench_compare.compare_payloads(
            committed, fresh, tolerance=0.30
        )
        assert len(rows) == 1 and not regressions
        assert rows[0]["ratio"] == pytest.approx(1.0)

    def test_regression_beyond_tolerance_flagged(self):
        committed = {"trials": 10, "warm_seconds": 1.0}
        fresh = {"trials": 10, "warm_seconds": 1.5}
        rows, regressions = bench_compare.compare_payloads(
            committed, fresh, tolerance=0.30
        )
        assert len(regressions) == 1
        assert regressions[0]["path"] == "warm_seconds"
        assert regressions[0]["ratio"] == pytest.approx(1.5)

    def test_slowdown_within_tolerance_passes(self):
        committed = {"warm_seconds": 1.0}
        fresh = {"warm_seconds": 1.25}
        _, regressions = bench_compare.compare_payloads(
            committed, fresh, tolerance=0.30
        )
        assert not regressions

    def test_speedups_and_new_fields_never_fail(self):
        committed = {"warm_seconds": 1.0}
        fresh = {"warm_seconds": 0.2, "new_section": {"fast_seconds": 99.0}}
        rows, regressions = bench_compare.compare_payloads(
            committed, fresh, tolerance=0.0
        )
        assert [r["path"] for r in rows] == ["warm_seconds"]
        assert not regressions

    def test_noise_floor_skips_sub_millisecond_timings(self):
        committed = {"tiny_seconds": 0.0002}
        fresh = {"tiny_seconds": 0.0009}  # 4.5x "slower" — pure noise
        rows, regressions = bench_compare.compare_payloads(
            committed, fresh, tolerance=0.30
        )
        assert not rows and not regressions

    def test_trace_phases_use_higher_noise_floor(self):
        # 20 ms is above the 1 ms headline floor but below the
        # trace-phase floor: skipped only inside a trace_phases block.
        committed = {
            "trace_phases": {"trials": 1, "engine_run_seconds": 0.02},
            "engine_run_seconds": 0.02,
        }
        fresh = {
            "trace_phases": {"trials": 1, "engine_run_seconds": 0.04},
            "engine_run_seconds": 0.04,
        }
        rows, regressions = bench_compare.compare_payloads(
            committed, fresh, tolerance=0.30
        )
        assert [r["path"] for r in rows] == ["engine_run_seconds"]
        assert [r["path"] for r in regressions] == ["engine_run_seconds"]

    def test_trace_phases_get_tolerance_slack(self):
        committed = {"trace_phases": {"trials": 1, "draw_seconds": 1.0}}
        # 50% slower: beyond the base 30% tolerance but inside the
        # doubled (60%) trace-phase tolerance.
        fresh_ok = {"trace_phases": {"trials": 1, "draw_seconds": 1.5}}
        _, regressions = bench_compare.compare_payloads(
            committed, fresh_ok, tolerance=0.30
        )
        assert not regressions
        fresh_bad = {"trace_phases": {"trials": 1, "draw_seconds": 1.7}}
        _, regressions = bench_compare.compare_payloads(
            committed, fresh_bad, tolerance=0.30
        )
        assert [r["path"] for r in regressions] == [
            "trace_phases.draw_seconds"
        ]


class TestCli:
    def _run(self, tmp_path, committed, fresh, extra=()):
        committed_path = tmp_path / "committed.json"
        fresh_path = tmp_path / "fresh.json"
        committed_path.write_text(json.dumps(committed))
        fresh_path.write_text(json.dumps(fresh))
        missing = tmp_path / "missing.json"
        return subprocess.run(
            [sys.executable, str(ROOT / "tools" / "bench_compare.py"),
             "--committed-trials", str(committed_path),
             "--fresh-trials", str(fresh_path),
             # Point the other pairs at a nonexistent committed file so
             # only the synthetic pair is compared (and nothing reruns).
             "--committed-protocol", str(missing),
             "--fresh-protocol", str(missing),
             "--committed-robustness", str(missing),
             "--fresh-robustness", str(missing),
             *extra],
            capture_output=True,
            text=True,
            timeout=60,
        )

    def test_passes_within_tolerance(self, tmp_path):
        result = self._run(
            tmp_path,
            {"trials": 10, "warm_seconds": 1.0},
            {"trials": 10, "warm_seconds": 1.1},
        )
        assert result.returncode == 0, result.stderr
        assert "0 regression(s)" in result.stdout

    def test_fails_on_regression(self, tmp_path):
        result = self._run(
            tmp_path,
            {"trials": 10, "warm_seconds": 1.0},
            {"trials": 10, "warm_seconds": 2.0},
        )
        assert result.returncode == 1
        assert "REGRESSED" in result.stdout
        assert "regression beyond tolerance" in result.stderr

    def test_tolerance_flag(self, tmp_path):
        result = self._run(
            tmp_path,
            {"trials": 10, "warm_seconds": 1.0},
            {"trials": 10, "warm_seconds": 2.0},
            extra=("--tolerance", "1.5"),
        )
        assert result.returncode == 0, result.stdout


class TestRobustnessIngestion:
    """The gate understands the ``bench_robustness/v2`` point layout."""

    @staticmethod
    def _point(trials, fast_seconds, engine_trials, engine_seconds):
        return {
            "trials": trials,
            "fast": {
                "trials": trials,
                "replay_seconds": fast_seconds,
                "ms_per_trial": 1000.0 * fast_seconds / trials,
            },
            "engine": {
                "trials": engine_trials,
                "runs_seconds": engine_seconds,
                "ms_per_trial": 1000.0 * engine_seconds / engine_trials,
            },
        }

    def test_route_timings_scale_by_their_own_trials(self):
        payload = {
            "schema": "bench_robustness/v2",
            "points": {"star": {"d0.05_c0.00": self._point(25, 0.05, 5, 1.0)}},
        }
        fields = bench_compare.collect_seconds(payload)
        # The replay amortises over all 25 trials, the engine route over
        # its 5-trial cross-check subset.
        assert fields[
            "points.star.d0.05_c0.00.fast.replay_seconds"
        ] == (0.05, 25.0)
        assert fields[
            "points.star.d0.05_c0.00.engine.runs_seconds"
        ] == (1.0, 5.0)

    def test_full_vs_smoke_trial_counts_compare_clean(self):
        committed = {
            "points": {"star": {"d0.05_c0.00": self._point(25, 0.05, 5, 1.0)}}
        }
        fresh = {  # smoke: 2 trials, 1 engine-checked — same per-trial cost
            "points": {"star": {"d0.05_c0.00": self._point(2, 0.004, 1, 0.2)}}
        }
        rows, regressions = bench_compare.compare_payloads(
            committed, fresh, tolerance=0.30
        )
        assert len(rows) == 2 and not regressions
        assert all(r["ratio"] == pytest.approx(1.0) for r in rows)

    def test_committed_robustness_payload_ingests(self):
        committed = ROOT / "BENCH_robustness.json"
        fields = bench_compare.collect_seconds(
            json.loads(committed.read_text())
        )
        # Dot-anchored: the trace_phases block has its own flattened
        # *_replay_seconds field that is not a per-point timing.
        replay_fields = [p for p in fields if p.endswith(".replay_seconds")]
        engine_fields = [p for p in fields if p.endswith(".runs_seconds")]
        assert len(replay_fields) == 24  # 3 topologies x 8 grid points
        assert len(engine_fields) == 24
        assert any(p.startswith("trace_phases.") for p in fields)
