"""Smoke-test the protocol fast-path benchmark end to end.

Runs ``tools/bench_protocol.py --smoke`` as a subprocess (the way CI and
users invoke it) and checks the JSON contract: the run succeeds, every
fast-path route agrees with the full protocol, and the warm start beats
both the cold run and the legacy engine baseline.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_smoke_run_writes_valid_report(tmp_path):
    out = tmp_path / "bench.json"
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "bench_protocol.py"),
         "--smoke", "--trials", "2", "--out", str(out)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr

    payload = json.loads(out.read_text())
    assert payload["schema"] == "bench_protocol/v1"
    assert payload["smoke"] is True
    for key in ("e5_packaging", "e6_tester", "e7_gather"):
        assert payload[key]["equivalent"] is True, key
        assert payload[key]["warm_seconds"] > 0
    e6 = payload["e6_tester"]
    assert e6["trials"] == 2
    # The fast path must actually be faster than the pre-fast-path loop.
    assert e6["speedup_warm"] > 1.0
    assert e6["speedup_cold"] > 1.0
    # Cold runs keep the O(D + tau) round count; warm runs shed the
    # tree-building prefix.
    e5 = payload["e5_packaging"]
    assert e5["warm_rounds"] < e5["cold_rounds"]
    # The trial plane must agree bit for bit with the engine route and
    # beat the warm engine by a wide margin.
    e15 = payload["e6_trial_plane"]
    assert e15["bit_identical"]["fast_vs_engine"] is True
    assert e15["equivalent"] is True
    assert e15["speedup_vs_warm"] > 10
    assert e15["layout_seconds"] > 0
    # The LOCAL plane must match the scalar Section 6 tester per trial,
    # its replayed MIS layout must match the engine, and the vectorised
    # sweep must be much faster at the same trial count.
    e16 = payload["e7_local_plane"]
    assert e16["bit_identical"]["fast_vs_scalar"] is True
    assert e16["bit_identical"]["layout_vs_engine"] is True
    assert e16["equivalent"] is True
    assert e16["speedup_vs_scalar"] > 10
    assert e16["trials"] >= 500
    assert e16["layout_seconds"] > 0
