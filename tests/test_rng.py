"""Tests for deterministic randomness management (repro.rng)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import derive, ensure_rng, spawn


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1 << 30, size=5)
        b = ensure_rng(42).integers(0, 1 << 30, size=5)
        assert np.array_equal(a, b)

    def test_distinct_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1 << 30, size=8)
        b = ensure_rng(2).integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        gen = ensure_rng(seq)
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_fresh_entropy(self):
        a = ensure_rng(None).integers(0, 1 << 62)
        b = ensure_rng(None).integers(0, 1 << 62)
        # Collision probability is negligible; equality means broken seeding.
        assert a != b


class TestSpawn:
    def test_children_are_independent_streams(self):
        children = spawn(ensure_rng(3), 4)
        draws = [c.integers(0, 1 << 62) for c in children]
        assert len(set(draws)) == 4

    def test_spawn_deterministic_given_parent_seed(self):
        a = [g.integers(0, 1 << 30) for g in spawn(ensure_rng(9), 3)]
        b = [g.integers(0, 1 << 30) for g in spawn(ensure_rng(9), 3)]
        assert a == b

    def test_spawn_zero_children(self):
        assert spawn(ensure_rng(0), 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)


class TestDerive:
    def test_same_labels_same_stream(self):
        a = derive(7, "exp", 3).integers(0, 1 << 30, size=4)
        b = derive(7, "exp", 3).integers(0, 1 << 30, size=4)
        assert np.array_equal(a, b)

    def test_different_labels_differ(self):
        a = derive(7, "exp", 3).integers(0, 1 << 30, size=4)
        b = derive(7, "exp", 4).integers(0, 1 << 30, size=4)
        assert not np.array_equal(a, b)

    def test_label_order_matters(self):
        a = derive(7, "a", "b").integers(0, 1 << 30, size=4)
        b = derive(7, "b", "a").integers(0, 1 << 30, size=4)
        assert not np.array_equal(a, b)

    def test_derive_independent_of_parent_consumption(self):
        # Deriving from an int seed must not depend on any generator state.
        first = derive(11, "x").integers(0, 1 << 30)
        _ = derive(11, "y").integers(0, 1 << 30)
        again = derive(11, "x").integers(0, 1 << 30)
        assert first == again
