"""Tests for deterministic randomness management (repro.rng)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import derive, derive_many, ensure_rng, spawn, spawn_lazy


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1 << 30, size=5)
        b = ensure_rng(42).integers(0, 1 << 30, size=5)
        assert np.array_equal(a, b)

    def test_distinct_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1 << 30, size=8)
        b = ensure_rng(2).integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        gen = ensure_rng(seq)
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_fresh_entropy(self):
        a = ensure_rng(None).integers(0, 1 << 62)
        b = ensure_rng(None).integers(0, 1 << 62)
        # Collision probability is negligible; equality means broken seeding.
        assert a != b


class TestSpawn:
    def test_children_are_independent_streams(self):
        children = spawn(ensure_rng(3), 4)
        draws = [c.integers(0, 1 << 62) for c in children]
        assert len(set(draws)) == 4

    def test_spawn_deterministic_given_parent_seed(self):
        a = [g.integers(0, 1 << 30) for g in spawn(ensure_rng(9), 3)]
        b = [g.integers(0, 1 << 30) for g in spawn(ensure_rng(9), 3)]
        assert a == b

    def test_spawn_zero_children(self):
        assert spawn(ensure_rng(0), 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)


class TestSpawnLazy:
    def test_bit_identical_to_spawn(self):
        eager = [g.integers(0, 1 << 30, size=4) for g in spawn(ensure_rng(9), 5)]
        lazy = [f().integers(0, 1 << 30, size=4) for f in spawn_lazy(ensure_rng(9), 5)]
        for a, b in zip(eager, lazy):
            assert np.array_equal(a, b)

    def test_access_order_irrelevant(self):
        """Stream-to-index assignment is fixed no matter which factory
        runs first (all child seed sequences spawn together then)."""
        eager = [int(g.integers(0, 1 << 62)) for g in spawn(ensure_rng(4), 4)]
        factories = spawn_lazy(ensure_rng(4), 4)
        out = {}
        for i in (3, 0, 2, 1):
            out[i] = int(factories[i]().integers(0, 1 << 62))
        assert [out[i] for i in range(4)] == eager

    def test_nothing_derived_until_first_call(self):
        parent = ensure_rng(2)
        factories = spawn_lazy(parent, 100)
        assert parent.bit_generator.seed_seq.n_children_spawned == 0
        factories[0]()
        assert parent.bit_generator.seed_seq.n_children_spawned == 100

    def test_zero_and_negative(self):
        assert spawn_lazy(ensure_rng(0), 0) == []
        with pytest.raises(ValueError):
            spawn_lazy(ensure_rng(0), -1)


class TestDerive:
    def test_same_labels_same_stream(self):
        a = derive(7, "exp", 3).integers(0, 1 << 30, size=4)
        b = derive(7, "exp", 3).integers(0, 1 << 30, size=4)
        assert np.array_equal(a, b)

    def test_different_labels_differ(self):
        a = derive(7, "exp", 3).integers(0, 1 << 30, size=4)
        b = derive(7, "exp", 4).integers(0, 1 << 30, size=4)
        assert not np.array_equal(a, b)

    def test_label_order_matters(self):
        a = derive(7, "a", "b").integers(0, 1 << 30, size=4)
        b = derive(7, "b", "a").integers(0, 1 << 30, size=4)
        assert not np.array_equal(a, b)

    def test_derive_independent_of_parent_consumption(self):
        # Deriving from an int seed must not depend on any generator state.
        first = derive(11, "x").integers(0, 1 << 30)
        _ = derive(11, "y").integers(0, 1 << 30)
        again = derive(11, "x").integers(0, 1 << 30)
        assert first == again

    def test_pinned_reference_streams(self):
        """Freeze the label->stream mapping across refactors.

        Every chunk-keyed trial in the repo re-derives its generator from
        ``derive(base_seed, *labels, chunk)``; if these pinned values ever
        change, previously recorded experiment numbers silently stop being
        reproducible.  Values recorded from the original per-trial FNV
        implementation.
        """
        assert list(derive(7, "exp", 3).integers(0, 1 << 30, size=4)) == [
            709069902, 247421871, 287192989, 215155484
        ]
        assert list(derive(0).integers(0, 1 << 30, size=3)) == [
            546054688, 414514874, 288749062
        ]
        assert list(derive(11, "x", 17).integers(0, 1 << 30, size=3)) == [
            930135804, 866458352, 401286331
        ]


class TestDeriveMany:
    def test_matches_looped_derive(self):
        """derive_many(seed, *labels, count) == [derive(seed, *labels, i)]."""
        for start, count in [(0, 7), (3, 5), (95, 20), (0, 1)]:
            gens = derive_many(13, "grid", "a", count=count, start=start)
            assert len(gens) == count
            for offset, gen in enumerate(gens):
                expected = derive(13, "grid", "a", start + offset)
                assert np.array_equal(
                    gen.integers(0, 1 << 30, size=3),
                    expected.integers(0, 1 << 30, size=3),
                )

    def test_digit_boundary_indices(self):
        """The vectorised FNV must handle index widths 9->10, 99->100."""
        for start in (8, 97, 998):
            gens = derive_many(5, "edge", count=4, start=start)
            for offset, gen in enumerate(gens):
                expected = derive(5, "edge", start + offset)
                assert gen.integers(0, 1 << 62) == expected.integers(0, 1 << 62)

    def test_count_zero(self):
        assert derive_many(0, "x", count=0) == []

    def test_count_negative_raises(self):
        with pytest.raises(ValueError):
            derive_many(0, "x", count=-1)
