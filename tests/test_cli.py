"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestSolveThreshold:
    def test_prints_parameters(self, capsys):
        code = main(["solve-threshold", "--n", "50000", "--k", "20000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "samples per node" in out
        assert "alarm threshold" in out

    def test_exact_flag(self, capsys):
        code = main(["solve-threshold", "--n", "50000", "--k", "20000", "--exact"])
        assert code == 0

    def test_with_trials(self, capsys):
        code = main(
            ["solve-threshold", "--n", "20000", "--k", "10000", "--eps", "1.0",
             "--trials", "5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "measured over 5 trials" in out

    def test_infeasible_exits_2(self, capsys):
        code = main(["solve-threshold", "--n", "100", "--k", "10"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err


class TestParameterValidation:
    """Out-of-range --eps / --p exit 2 with a clear message, not a crash."""

    @pytest.mark.parametrize("eps", ["3.0", "0", "-1"])
    def test_eps_outside_unit_l1_range_rejected(self, capsys, eps):
        code = main(["solve-threshold", "--n", "50000", "--k", "20000",
                     "--eps", eps])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err and "--eps" in err and "(0, 2]" in err

    @pytest.mark.parametrize("p", ["0", "1", "1.5", "-0.25"])
    def test_p_outside_open_interval_rejected(self, capsys, p):
        code = main(["solve-threshold", "--n", "50000", "--k", "20000",
                     "--p", p])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err and "--p" in err and "(0, 1)" in err

    def test_validation_covers_other_commands(self, capsys):
        code = main(["solve-congest", "--n", "500", "--k", "5000",
                     "--diameter", "20", "--eps", "2.5"])
        assert code == 2
        assert "--eps" in capsys.readouterr().err

    @pytest.mark.parametrize("n", ["1", "0", "-5"])
    def test_too_small_n_rejected(self, capsys, n):
        code = main(["solve-threshold", "--n", n, "--k", "20000"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err and "--n" in err and ">= 2" in err

    @pytest.mark.parametrize("k", ["0", "-7"])
    def test_nonpositive_k_rejected(self, capsys, k):
        code = main(["solve-threshold", "--n", "50000", "--k", k])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err and "--k" in err and ">= 1" in err

    def test_small_n_k_rejected_on_every_command(self, capsys):
        for argv in (
            ["demo", "--n", "1", "--k", "100"],
            ["bounds", "--n", "50000", "--k", "0"],
            ["solve-congest", "--n", "1", "--k", "60"],
            ["robustness", "--n", "200", "--k", "0"],
        ):
            code = main(argv)
            err = capsys.readouterr().err
            assert code == 2, argv
            assert "error:" in err, argv

    def test_topology_minimum_nodes_enforced(self, capsys):
        # A ring needs >= 3 nodes; only commands that build the topology check.
        code = main(["robustness", "--n", "200", "--k", "2",
                     "--topology", "ring", "--trials", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "--topology ring needs k >= 3" in err

    def test_topology_minimum_skipped_without_trials(self, capsys):
        # solve-congest without --trials never builds the topology: the
        # small-ring check must not fire (the solver's own infeasibility
        # message surfaces instead).
        code = main(["solve-congest", "--n", "500", "--k", "2",
                     "--diameter", "20", "--topology", "ring"])
        err = capsys.readouterr().err
        assert code == 2
        assert "--topology" not in err
        assert "feasible" in err

    def test_in_range_values_accepted(self, capsys):
        code = main(["solve-threshold", "--n", "50000", "--k", "20000",
                     "--eps", "1.5", "--p", "0.49"])
        assert code == 0


class TestOtherCommands:
    def test_solve_and(self, capsys):
        code = main(
            ["solve-and", "--n", "50000", "--k", "1024", "--eps", "1.0",
             "--p", "0.45"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "repetitions m" in out

    def test_solve_congest(self, capsys):
        code = main(
            ["solve-congest", "--n", "500", "--k", "5000", "--diameter", "20"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "package size tau" in out
        assert "D=20" in out

    def test_solve_congest_trials_fast_path(self, capsys):
        code = main(
            ["solve-congest", "--n", "200", "--k", "60",
             "--samples-per-node", "64", "--trials", "5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "measured over 5 trials on star (trial plane)" in out
        assert "err(uniform)=" in out and "err(far)=" in out

    def test_solve_congest_engine_route_agrees(self, capsys):
        args = ["solve-congest", "--n", "200", "--k", "60",
                "--samples-per-node", "64", "--trials", "4"]
        assert main(args) == 0
        fast = capsys.readouterr().out.splitlines()[-1]
        assert main(args + ["--engine"]) == 0
        engine = capsys.readouterr().out.splitlines()[-1]
        # Same error rates either route; only the label differs.
        assert fast.replace("trial plane", "engine") == engine

    def test_solve_congest_nonpositive_trials_exits_2(self, capsys):
        for bad in ("0", "-3"):
            code = main(
                ["solve-congest", "--n", "200", "--k", "60",
                 "--trials", bad]
            )
            err = capsys.readouterr().err
            assert code == 2
            assert "--trials must be a positive trial count" in err

    def test_solve_congest_fast_path_engine_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["solve-congest", "--n", "200", "--k", "60",
                  "--trials", "2", "--fast-path", "--engine"])

    def test_robustness_fast_path(self, capsys):
        code = main(
            ["robustness", "--n", "200", "--k", "60",
             "--samples-per-node", "64", "--trials", "2",
             "--drop-probs", "0.0", "0.05", "--seed", "2018"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[fault plane]" in out
        assert "err(unif)" in out and "engine trials" in out

    def test_robustness_engine_route(self, capsys):
        code = main(
            ["robustness", "--n", "200", "--k", "60",
             "--samples-per-node", "64", "--trials", "1",
             "--drop-probs", "0.0", "--engine"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[engine]" in out

    def test_robustness_validation_exits_2(self, capsys):
        base = ["robustness", "--n", "200", "--k", "60",
                "--samples-per-node", "64"]
        for extra, needle in (
            (["--trials", "0"], "--trials must be a positive"),
            (["--engine-check", "1.5"], "--engine-check must be in [0, 1]"),
            (["--drop-probs", "1.5"], "--drop-probs entries"),
            (["--crash-fractions", "1.0"], "--crash-fractions entries"),
        ):
            code = main(base + extra)
            err = capsys.readouterr().err
            assert code == 2
            assert "error:" in err and needle in err

    def test_robustness_fast_path_engine_exclusive(self):
        with pytest.raises(SystemExit):
            main(["robustness", "--n", "200", "--k", "60",
                  "--trials", "2", "--fast-path", "--engine"])

    # Feasible Section 6 instance: ring(512) at r=8 fits Theorem 1.1.
    _LOCAL = ["local", "--n", "2000", "--k", "512", "--eps", "1.5",
              "--p", "0.45", "--radius", "8"]

    def test_local_fast_path(self, capsys):
        code = main(self._LOCAL + ["--trials", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MIS virtual nodes" in out
        assert "(local plane)" in out

    def test_local_engine_route_agrees(self, capsys):
        code = main(self._LOCAL + ["--trials", "20"])
        fast = capsys.readouterr().out
        assert code == 0
        code = main(self._LOCAL + ["--trials", "20", "--engine"])
        engine = capsys.readouterr().out
        assert code == 0
        assert "(scalar tester)" in engine
        # Same seeds, same streams: the measured rates must match exactly.
        assert fast.split("(local plane): ")[1] == \
            engine.split("(scalar tester): ")[1]

    def test_local_validation_exits_2(self, capsys):
        for extra, needle in (
            (["--trials", "0"], "--trials must be >= 1"),
            (["--radius", "0", "--trials", "5"], "--radius must be >= 1"),
            (["--engine-check", "1.5"], "--engine-check must be in [0, 1]"),
        ):
            base = [a for a in self._LOCAL if a not in ("--radius", "8")] \
                if "--radius" in extra else list(self._LOCAL)
            code = main(base + extra)
            err = capsys.readouterr().err
            assert code == 2
            assert "error:" in err and needle in err

    def test_local_topology_minimum_enforced(self, capsys):
        code = main(["local", "--n", "2000", "--k", "2",
                     "--topology", "ring", "--trials", "5"])
        err = capsys.readouterr().err
        assert code == 2
        assert "needs k >= 3" in err

    def test_local_fast_path_engine_exclusive(self):
        with pytest.raises(SystemExit):
            main(self._LOCAL + ["--trials", "5", "--fast-path", "--engine"])

    def test_demo(self, capsys):
        code = main(["demo", "--n", "20000", "--k", "10000", "--eps", "1.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "accept" in out or "reject" in out

    def test_bounds(self, capsys):
        code = main(["bounds", "--n", "50000", "--k", "20000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Thm 1.2" in out and "lower bound" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTracing:
    def test_trace_writes_jsonl_and_report_renders(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["robustness", "--n", "200", "--k", "60",
             "--samples-per-node", "64", "--trials", "2",
             "--drop-probs", "0.0", "0.05", "--seed", "2018",
             "--trace", str(trace)]
        )
        capsys.readouterr()
        assert code == 0
        assert trace.exists()
        code = main(["report", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "route" in out and "fault-plane" in out
        assert "robustness.sweep" in out
        assert "hot phases" in out.lower()

    def test_trace_on_solve_threshold(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        code = main(["solve-threshold", "--n", "50000", "--k", "20000",
                     "--trace", str(trace)])
        capsys.readouterr()
        assert code == 0
        code = main(["report", str(trace)])
        out = capsys.readouterr().out
        assert code == 0
        assert "solve" in out

    def test_report_on_missing_file_exits_2(self, capsys, tmp_path):
        code = main(["report", str(tmp_path / "nope.jsonl")])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err

    def test_report_on_garbage_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        code = main(["report", str(bad)])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err


class TestSmpCommand:
    ARGS = ["smp", "--n-bits", "32", "--trials", "40", "--seed", "0"]

    def test_fast_path_prints_tables(self, capsys):
        code = main(self.ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "codeword bits" in out
        assert "smp plane" in out
        assert "error rate" in out

    def test_engine_route_agrees(self, capsys):
        assert main(self.ARGS) == 0
        fast = capsys.readouterr().out
        assert main(self.ARGS + ["--engine"]) == 0
        engine = capsys.readouterr().out
        # Same seeds, same streams: the error-rate tables must match.
        assert fast.split("measured over")[1].splitlines()[1:] == \
            engine.split("measured over")[1].splitlines()[1:]
        assert "scalar protocol" in engine

    def test_engine_check_fraction_accepted(self, capsys):
        code = main(self.ARGS + ["--engine-check", "0.5"])
        assert code == 0
        capsys.readouterr()

    @pytest.mark.parametrize("argv,msg", [
        (["smp", "--trials", "0"], "--trials"),
        (["smp", "--n-bits", "0"], "--n-bits"),
        (["smp", "--delta", "1.5"], "--delta"),
        (["smp", "--tau", "1.0"], "--tau"),
        (["smp", "--engine-check", "2.0"], "--engine-check"),
    ])
    def test_invalid_parameters_exit_2(self, capsys, argv, msg):
        code = main(argv)
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err and msg in err

    def test_trace_reports_smp_plane_route(self, capsys, tmp_path):
        trace = tmp_path / "smp.jsonl"
        code = main(self.ARGS + ["--trace", str(trace)])
        capsys.readouterr()
        assert code == 0
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "smp-plane" in out
        assert "smp_plane.encode" in out
