"""E4 — Asymmetric sampling costs (Section 4).

Reproduces: the maximum individual cost of the threshold construction
tracks ``sqrt(2 n Δ) / ||T||_2`` (inverse-cost L2 norm); the symmetric
cost vector recovers Theorem 1.2; expensive nodes draw proportionally
fewer samples; and Lemma 4.1's extremality holds numerically on random
cost assignments.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distributions import far_family, uniform
from repro.experiments import Table
from repro.zeroround import (
    CostVector,
    asymmetric_threshold_parameters,
    lemma41_products,
)

from _common import save_table

N, EPS = 50_000, 0.9
K = 20_000

COST_PROFILES = {
    "uniform(1)": [1.0] * K,
    "bimodal(1,5)": [1.0] * (K // 2) + [5.0] * (K // 2),
    "bimodal(1,25)": [1.0] * (K // 2) + [25.0] * (K // 2),
    "powerlaw": [1.0 + (i / K) ** 2 * 9.0 for i in range(K)],
}


@pytest.mark.benchmark(group="e4")
def test_e4_cost_tracks_inverse_l2_norm(benchmark):
    table = Table(
        [
            "cost profile",
            "||T||_2",
            "max cost C",
            "paper curve sqrt(2nΔ)/||T||_2",
            "ratio",
            "err(far)",
        ],
        title="E4 - Section 4.2 threshold construction at n=%d, k=%d" % (N, K),
    )
    far = far_family("paninski", N, EPS, rng=0)
    ratios = []
    for name, costs_list in COST_PROFILES.items():
        costs = CostVector.of(costs_list)
        params = asymmetric_threshold_parameters(N, costs, EPS)
        norm2 = costs.inverse_norm(2)
        predicted = math.sqrt(2.0 * N * params.total_delta) / norm2
        ratio = params.max_cost / predicted
        ratios.append(ratio)
        err_far = sum(params.test(far, rng=i) for i in range(10)) / 10
        assert err_far <= 1 / 3 + 0.15
        table.add_row(
            [name, round(norm2, 1), round(params.max_cost, 1),
             round(predicted, 1), round(ratio, 3), round(err_far, 2)]
        )
    # Reproduction criterion: measured max cost within 35% of the paper
    # curve across all profiles (integer rounding is the slack).
    assert all(0.65 <= r <= 1.35 for r in ratios)
    print("\n" + save_table("e4_asymmetric_costs", table))

    costs = CostVector.of(COST_PROFILES["bimodal(1,5)"])
    benchmark(lambda: asymmetric_threshold_parameters(N, costs, EPS))


@pytest.mark.benchmark(group="e4")
def test_e4_lemma41_extremality(benchmark):
    """Lemma 4.1 on random vectors: g(X) <= g(Y) always."""
    rng = np.random.default_rng(1)
    table = Table(
        ["k", "a", "g(X) (asymmetric)", "g(Y) (symmetric)", "g(X) <= g(Y)"],
        title="E4b - Lemma 4.1 numeric extremality check",
    )
    worst_gap = 0.0
    for trial in range(200):
        k = int(rng.integers(2, 12))
        x = rng.uniform(0, 0.08, size=k)
        c = float(np.prod(1 - x))
        a_max = 1.0 / (1.0 - c)
        a = 1.0 + (a_max - 1.0) * rng.uniform(0.1, 0.9)
        g_x, g_y = lemma41_products(x, a)
        assert g_x <= g_y + 1e-12
        worst_gap = max(worst_gap, g_x - g_y)
        if trial < 5:
            table.add_row([k, round(a, 3), round(g_x, 6), round(g_y, 6), g_x <= g_y + 1e-12])
    table.add_row(["(200 trials)", "", "", "max violation:", f"{worst_gap:.2e}"])
    print("\n" + save_table("e4b_lemma41", table))

    benchmark(lambda: lemma41_products([0.01] * 8, 2.0))
