"""E12 — Design-choice ablations.

Two ablations DESIGN.md calls out:

a) **Threshold placement: Chernoff (Eq. 5) vs exact binomial tails.**
   Both solvers carry the same proof structure; the exact tails shrink
   the constants, opening the construction to much smaller networks and
   fewer samples per node.  This quantifies what the paper's asymptotic
   analysis hides.

b) **Far-family difficulty.**  Lemma 3.2 is tight exactly on the
   Paninski pairing; every other ε-far family has strictly larger
   collision probability and is strictly easier for the tester.  The
   measured per-node rejection rates must rank accordingly, with
   Paninski at the floor.
"""

from __future__ import annotations

import pytest

from repro.core.params import threshold_parameters, threshold_parameters_exact
from repro.distributions import FAR_FAMILY_BUILDERS, far_family, uniform
from repro.exceptions import InfeasibleParametersError
from repro.experiments import Table
from repro.zeroround.network import estimate_rejection_probability

from _common import save_table

N, EPS = 50_000, 0.9


def _min_feasible_k(solver) -> int:
    lo, hi = 2, 1 << 17
    # Find any feasible point first.
    while hi > lo:
        mid = (lo + hi) // 2
        try:
            solver(N, mid, EPS)
            hi = mid
        except InfeasibleParametersError:
            lo = mid + 1
    return lo


@pytest.mark.benchmark(group="e12")
def test_e12a_chernoff_vs_exact_windows(benchmark):
    table = Table(
        ["solver", "min feasible k", "s/node at k=20000", "T at k=20000"],
        title="E12a - threshold placement: Chernoff (Eq. 5) vs exact tails",
    )
    k_chernoff = _min_feasible_k(threshold_parameters)
    k_exact = _min_feasible_k(threshold_parameters_exact)
    p_chernoff = threshold_parameters(N, 20_000, EPS)
    p_exact = threshold_parameters_exact(N, 20_000, EPS)
    table.add_row(["Chernoff (paper Eq. 5)", k_chernoff, p_chernoff.s,
                   p_chernoff.threshold])
    table.add_row(["exact binomial tails", k_exact, p_exact.s,
                   p_exact.threshold])
    # Reproduction criteria: exact tails strictly dominate.
    assert k_exact < k_chernoff
    assert p_exact.s <= p_chernoff.s
    print("\n" + save_table("e12a_window_ablation", table))

    # The exact solver still delivers the statistical guarantee.  One
    # threshold_verdicts call replaces the old 20-iteration Python loop:
    # all 20 network trials share a single (trials*k, s) sample matrix.
    tester_params = threshold_parameters_exact(N, max(k_exact, 2000), EPS)
    u = uniform(N)
    far = far_family("paninski", N, EPS, rng=0)
    k_run = tester_params.k
    from repro.zeroround.network import threshold_verdicts

    accepts_u = threshold_verdicts(
        u, k_run, tester_params.s, tester_params.threshold, 20, rng=7
    )
    accepts_f = threshold_verdicts(
        far, k_run, tester_params.s, tester_params.threshold, 20, rng=107
    )
    wrong_u = int((~accepts_u).sum())
    wrong_f = int(accepts_f.sum())
    assert wrong_u <= 20 * (1 / 3) + 3
    assert wrong_f <= 20 * (1 / 3) + 3

    benchmark(lambda: threshold_parameters_exact(N, 20_000, EPS))


@pytest.mark.benchmark(group="e12")
def test_e12b_far_family_difficulty(benchmark):
    """Paninski sits at the Lemma 3.2 floor; everything else rejects more."""
    from repro.core import CollisionGapTester

    tester = CollisionGapTester.from_delta(N, 0.05)
    trials = 40_000
    table = Table(
        ["family", "chi(mu) * n", "measured rejection", "Lemma 3.2 floor (1+eps^2)"],
        title="E12b - which eps-far family is hardest? (delta=%.2f, eps=%.1f)"
        % (tester.delta, EPS),
    )
    rates = {}
    for family in sorted(FAR_FAMILY_BUILDERS):
        dist = far_family(family, N, EPS, rng=1)
        rate = estimate_rejection_probability(
            dist, tester.s, trials, rng=2, batch=8192
        )
        rates[family] = rate
        table.add_row(
            [family, round(dist.collision_probability() * N, 3),
             round(rate, 4), round(1 + EPS * EPS, 3)]
        )
    # Reproduction criteria: paninski is the minimum (ties with two_bump,
    # which shares the same chi); heavy is the maximum.
    sigma = (max(rates.values()) / trials) ** 0.5
    assert rates["paninski"] <= min(rates.values()) + 4 * sigma
    assert rates["heavy"] >= max(rates.values()) - 4 * sigma
    print("\n" + save_table("e12b_family_difficulty", table))

    dist = far_family("paninski", N, EPS, rng=3)
    benchmark(
        lambda: estimate_rejection_probability(
            dist, tester.s, 4096, rng=4, batch=4096
        )
    )
