"""E9 — The lower-bound sandwich (Theorems 1.3, 7.1, 7.2 / Corollary 7.4).

Reproduces three facts:

1. Lemma 2.1's KL separation holds numerically over a parameter grid.
2. The *measured* minimal sample count at which the single-collision
   tester achieves a (delta, 1+eps^2/2)-gap lies between Corollary 7.4's
   Omega(sqrt(f(alpha) delta n)/log n) and the construction's
   sqrt(2 delta n) — the sandwich that certifies the tester is
   near-optimal in this regime.
3. The Theorem 7.1 reduction run forward: the tester's gap becomes an
   Equality protocol's error profile at cost q*log(n) bits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CollisionGapTester
from repro.core.bounds import (
    gap_tester_lower_bound,
    gap_tester_samples,
)
from repro.distributions import far_family, uniform
from repro.experiments import Table
from repro.smp import BCGMapping, ConcatenatedCode, TesterBasedEqualityProtocol
from repro.smp.lowerbound import verify_kl_separation
from repro.zeroround.network import estimate_rejection_probability

from _common import save_table

N = 20_000
EPS = 0.9
TRIALS = 20_000


@pytest.mark.benchmark(group="e9")
def test_e9_kl_grid(benchmark):
    worst = np.inf
    for delta in np.linspace(0.01, 0.24, 12):
        for tau in np.linspace(1.05, min(4.0, 0.9 / delta), 12):
            exact, bound = verify_kl_separation(float(delta), float(tau))
            worst = min(worst, exact - bound)
    table = Table(["check", "value"], title="E9a - Lemma 2.1 KL separation grid")
    table.add_row(["grid points", 144])
    table.add_row(["min (exact KL - bound)", f"{worst:.3e}"])
    assert worst >= -1e-15
    print("\n" + save_table("e9a_kl_grid", table))

    benchmark(lambda: verify_kl_separation(0.05, 2.0))


@pytest.mark.benchmark(group="e9")
def test_e9_sandwich_table(benchmark):
    """Empirical minimal s for the gap vs the two theory curves."""
    far = far_family("paninski", N, EPS, rng=0)
    u = uniform(N)
    table = Table(
        [
            "delta",
            "lower bound (Cor 7.4)",
            "measured minimal s",
            "construction s = sqrt(2 delta n)",
        ],
        title="E9b - sample-complexity sandwich at n=%d, eps=%.1f" % (N, EPS),
    )
    for delta in (0.05, 0.1, 0.2):
        alpha = 1.0 + EPS * EPS / 2.0

        def has_gap(s: int) -> bool:
            """Does s deliver the (delta, alpha) gap empirically?

            Not monotone in s (completeness re-breaks once binom(s,2)/n
            exceeds delta), so the search below is a linear scan for the
            *first* working s.
            """
            rate_u = estimate_rejection_probability(u, s, TRIALS, rng=s)
            rate_f = estimate_rejection_probability(far, s, TRIALS, rng=s + 1)
            return rate_u <= delta * 1.05 and rate_f >= alpha * delta * 0.9

        upper = CollisionGapTester.from_delta(N, delta).s
        measured = next(
            (s for s in range(2, 2 * upper) if has_gap(s)), None
        )
        lower = gap_tester_lower_bound(N, delta, alpha)
        construction = gap_tester_samples(N, delta)
        assert measured is not None
        # The sandwich: lower <= measured <= construction (with MC slack).
        assert lower <= measured <= construction * 1.1
        table.add_row([delta, round(lower, 1), measured, round(construction, 1)])
    print("\n" + save_table("e9b_sandwich", table))

    benchmark(
        lambda: estimate_rejection_probability(u, 40, 4096, rng=9)
    )


@pytest.mark.benchmark(group="e9")
def test_e9_reduction_forward(benchmark):
    """Theorem 7.1 run forward: tester -> EQ protocol with q log n bits."""
    code = ConcatenatedCode.for_message_bits(128)
    mapping = BCGMapping(code=code)
    delta = 0.2
    tester = CollisionGapTester.from_delta(mapping.domain_size, delta)
    proto = TesterBasedEqualityProtocol(mapping=mapping, tester=tester)

    rng = np.random.default_rng(1)
    x = rng.integers(0, 2, 128)
    y = x.copy()
    y[7] ^= 1
    acc_eq = proto.estimate_acceptance(x, x, trials=4000, rng=2)
    acc_neq = proto.estimate_acceptance(x, y, trials=4000, rng=3)

    table = Table(["quantity", "value"], title="E9c - Theorem 7.1 forward")
    table.add_row(["domain 2m'", mapping.domain_size])
    table.add_row(["tester samples q", tester.samples_required])
    table.add_row(["protocol bits (q log n)", proto.communication_bits])
    table.add_row(["accept(equal)", round(acc_eq, 4)])
    table.add_row(["accept(unequal)", round(acc_neq, 4)])
    assert acc_eq >= 1 - delta - 0.02
    assert acc_neq < acc_eq  # the gap survives the reduction
    print("\n" + save_table("e9c_reduction", table))

    benchmark(lambda: proto.run(x, y, rng=4))
