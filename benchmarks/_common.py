"""Shared helpers for the benchmark suite.

Every ``bench_e*.py`` reproduces one experiment from DESIGN.md's index:
it computes the experiment's table, *asserts the reproduction criteria*
(the shape claims: who wins, what slope, which bound holds), stores the
rendered table under ``benchmarks/results/`` for EXPERIMENTS.md, and
times its core kernel with pytest-benchmark.
"""

from __future__ import annotations

import pathlib

from repro.experiments import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_table(name: str, table: Table) -> str:
    """Persist a rendered experiment table and return the text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = table.render()
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text
