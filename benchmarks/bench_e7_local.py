"""E7 — The LOCAL-model tester (Section 6).

Reproduces: Luby-MIS gathering gives <= 2k/r virtual nodes each holding
>= r/2 samples; the AND-rule tester over the MIS nodes achieves error
<= p; total rounds = (MIS phases on G^r) * r + routing <= O(r log k);
and the feasible radius sits near the paper's closed-form curve.

Error rates run through the vectorised LOCAL trial plane
(``estimate_error(fast_path=True)``), which is bit-identical per seed to
the scalar ``test_with_plan`` route — ``engine_check`` re-runs a prefix
of every sweep through the scalar tester and cross-checks the replayed
MIS layout against a real engine run.  That buys 512-trial sweeps (vs
the historical 60 scalar trials) and correspondingly tighter error
columns.
"""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import local_radius
from repro.distributions import far_family, uniform
from repro.experiments import Table
from repro.localmodel import LocalTrialRunner, LocalUniformityTester
from repro.simulator import Topology

from _common import save_table

N, EPS, P = 20_000, 1.0, 0.45
K, R = 4_096, 64
TRIALS = 512
#: Fraction of each sweep re-run through the scalar tester (plus a full
#: engine MIS cross-check) — the bit-identity audit baked into the run.
ENGINE_CHECK = 0.05
#: Two-sided ~3.5 sigma slack on a 512-trial rate estimate near p.
ERR_SLACK = 0.08


@pytest.mark.benchmark(group="e7")
def test_e7_ring_table(benchmark):
    tester = LocalUniformityTester(n=N, eps=EPS, p=P)
    ring = Topology.ring(K)
    runner = LocalTrialRunner.build(tester, ring, R, base_seed=100)
    plan = runner.plan

    # Structural reproduction criteria (Section 6's counting argument).
    assert plan.mis_size <= 2 * K // R
    assert plan.min_catchment >= R // 2
    assert plan.rounds <= (3 * (4 * math.log2(K) + 8)) * R + R

    u = uniform(N)
    far = far_family("paninski", N, EPS, rng=1)
    # engine_check > 0: every sweep audits a scalar prefix and the
    # engine MIS, raising SimulationError on any divergence.
    err_u = tester.estimate_error(
        ring, u, True, R, TRIALS, rng=100,
        fast_path=True, engine_check=ENGINE_CHECK,
    )
    err_f = tester.estimate_error(
        ring, far, False, R, TRIALS, rng=200,
        fast_path=True, engine_check=ENGINE_CHECK,
    )
    assert err_u <= P + ERR_SLACK
    assert err_f <= P + ERR_SLACK

    table = Table(["quantity", "measured", "bound / target"],
                  title="E7 - LOCAL tester on ring(%d), r=%d" % (K, R))
    table.add_row(["virtual nodes (MIS of G^r)", plan.mis_size, f"<= {2 * K // R}"])
    table.add_row(["min samples per virtual node", plan.min_catchment, f">= {R // 2}"])
    table.add_row(["samples used per virtual node",
                   plan.params.samples_per_node, f"<= {plan.min_catchment}"])
    table.add_row(["rounds", plan.rounds, "O(r log k)"])
    table.add_row(["err(uniform), %d trials" % TRIALS, round(err_u, 3),
                   f"<= {P} (+{ERR_SLACK} slack)"])
    table.add_row(["err(far), %d trials" % TRIALS, round(err_f, 3),
                   f"<= {P} (+{ERR_SLACK} slack)"])
    table.add_row(["scalar trials cross-checked",
                   2 * round(ENGINE_CHECK * TRIALS), "bit-identical"])
    print("\n" + save_table("e7_local_ring", table))

    benchmark(lambda: runner.error_rate(u, True, 128))


@pytest.mark.benchmark(group="e7")
def test_e7_radius_search(benchmark):
    """The doubling search lands within 4x of the paper's radius curve."""
    tester = LocalUniformityTester(n=N, eps=EPS, p=P)
    ring = Topology.ring(K)
    found = tester.choose_radius(ring, rng=2, start=8, fast_path=True)
    paper = local_radius(N, K, EPS, P)
    table = Table(["quantity", "value"], title="E7b - gathering radius")
    table.add_row(["doubling-search radius (fast path)", found])
    table.add_row(["paper closed-form curve", round(paper, 1)])
    assert found <= max(8 * paper, 8.0 * 8)
    print("\n" + save_table("e7b_radius", table))

    # The probes share the layout cache: repeating the search is cheap.
    benchmark(
        lambda: tester.choose_radius(ring, rng=2, start=8, fast_path=True)
    )
