"""E7 — The LOCAL-model tester (Section 6).

Reproduces: Luby-MIS gathering gives <= 2k/r virtual nodes each holding
>= r/2 samples; the AND-rule tester over the MIS nodes achieves error
<= p; total rounds = (MIS phases on G^r) * r + routing <= O(r log k);
and the feasible radius sits near the paper's closed-form curve.
"""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import local_radius
from repro.distributions import far_family, uniform
from repro.experiments import Table
from repro.localmodel import LocalUniformityTester
from repro.simulator import Topology

from _common import save_table

N, EPS, P = 20_000, 1.0, 0.45
K, R = 4_096, 64
TRIALS = 60


@pytest.mark.benchmark(group="e7")
def test_e7_ring_table(benchmark):
    tester = LocalUniformityTester(n=N, eps=EPS, p=P)
    ring = Topology.ring(K)
    plan = tester.plan(ring, R, rng=0)

    # Structural reproduction criteria (Section 6's counting argument).
    assert plan.mis_size <= 2 * K // R
    assert plan.min_catchment >= R // 2
    assert plan.rounds <= (3 * (4 * math.log2(K) + 8)) * R + R

    u = uniform(N)
    far = far_family("paninski", N, EPS, rng=1)
    err_u = sum(
        not tester.test_with_plan(plan, u, rng=100 + i) for i in range(TRIALS)
    ) / TRIALS
    err_f = sum(
        tester.test_with_plan(plan, far, rng=200 + i) for i in range(TRIALS)
    ) / TRIALS
    assert err_u <= P + 0.15
    assert err_f <= P + 0.15

    table = Table(["quantity", "measured", "bound / target"],
                  title="E7 - LOCAL tester on ring(%d), r=%d" % (K, R))
    table.add_row(["virtual nodes (MIS of G^r)", plan.mis_size, f"<= {2 * K // R}"])
    table.add_row(["min samples per virtual node", plan.min_catchment, f">= {R // 2}"])
    table.add_row(["samples used per virtual node",
                   plan.params.samples_per_node, f"<= {plan.min_catchment}"])
    table.add_row(["rounds", plan.rounds, "O(r log k)"])
    table.add_row(["err(uniform)", round(err_u, 3), f"<= {P}"])
    table.add_row(["err(far)", round(err_f, 3), f"<= {P}"])
    print("\n" + save_table("e7_local_ring", table))

    benchmark(lambda: tester.test_with_plan(plan, u, rng=7))


@pytest.mark.benchmark(group="e7")
def test_e7_radius_search(benchmark):
    """The doubling search lands within 4x of the paper's radius curve."""
    tester = LocalUniformityTester(n=N, eps=EPS, p=P)
    ring = Topology.ring(K)
    found = tester.choose_radius(ring, rng=2, start=8)
    paper = local_radius(N, K, EPS, P)
    table = Table(["quantity", "value"], title="E7b - gathering radius")
    table.add_row(["doubling-search radius", found])
    table.add_row(["paper closed-form curve", round(paper, 1)])
    assert found <= max(8 * paper, 8.0 * 8)
    print("\n" + save_table("e7b_radius", table))

    benchmark(lambda: tester.plan(ring, found, rng=3))
