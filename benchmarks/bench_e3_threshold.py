"""E3 — 0-round testing under the threshold rule (Theorem 1.2).

Reproduces the theorem's headline shape: per-node samples
``s = Theta(sqrt(n/k)/eps^2)`` — a log-log slope of −1/2 in k — with
measured network error <= 1/3 on both sides, plus the head-to-head
against the AND rule at a common configuration (the threshold rule must
win decisively).
"""

from __future__ import annotations

import pytest

from repro.core.bounds import threshold_rule_samples
from repro.core.params import and_rule_parameters
from repro.distributions import far_family, uniform
from repro.experiments import Table, loglog_slope
from repro.zeroround import ThresholdNetworkTester

from _common import save_table

N, EPS = 50_000, 0.9
K_SWEEP = [10_000, 20_000, 40_000, 80_000, 160_000]
TRIALS = 40


@pytest.mark.benchmark(group="e3")
def test_e3_threshold_scaling_table(benchmark):
    table = Table(
        ["k", "s/node", "paper curve", "T", "err(uniform)", "err(far)"],
        title="E3 - Theorem 1.2 (threshold rule) at n=%d, eps=%.1f" % (N, EPS),
    )
    u = uniform(N)
    far = far_family("paninski", N, EPS, rng=0)
    ks, ss = [], []
    for k in K_SWEEP:
        tester = ThresholdNetworkTester.solve(N, k, EPS)
        # Seed-like rng routes through the batched trial engine; batch=None
        # lets auto_batch pick a memory-capped trials-per-matrix.
        err_u = tester.estimate_error(u, True, TRIALS, rng=k, batch=None)
        err_f = tester.estimate_error(far, False, TRIALS, rng=k + 1, batch=None)
        assert err_u <= 1 / 3 + 0.1
        assert err_f <= 1 / 3 + 0.1
        ks.append(k)
        ss.append(tester.samples_per_node)
        table.add_row(
            [
                k,
                tester.samples_per_node,
                round(threshold_rule_samples(N, k, EPS), 1),
                tester.params.threshold,
                round(err_u, 3),
                round(err_f, 3),
            ]
        )
    slope, _ = loglog_slope(ks, ss)
    table.add_row(["log-log slope", round(slope, 3), "-0.5 (theory)", "", "", ""])
    # Reproduction criterion: s ~ k^{-1/2}.
    assert -0.65 <= slope <= -0.35
    print("\n" + save_table("e3_threshold_scaling", table))

    tester = ThresholdNetworkTester.solve(N, 20_000, EPS)
    # Benchmark the vectorised threshold_verdicts kernel: 16 network
    # trials per call, one sample matrix each.
    benchmark(lambda: tester.test_many(u, 16, rng=1))


@pytest.mark.benchmark(group="e3")
def test_e3_threshold_vs_and_rule(benchmark):
    """Who wins: threshold vs AND at the same (n, k, eps, p)."""
    n, k, eps, p = 1_000_000, 16_384, 1.0, 1 / 3
    thr = ThresholdNetworkTester.solve(n, k, eps, p)
    anr = and_rule_parameters(n, k, eps, p)
    table = Table(
        ["rule", "samples/node", "network error budget"],
        title="E3b - decision-rule head-to-head at n=%d, k=%d" % (n, k),
    )
    table.add_row(["threshold (Thm 1.2)", thr.samples_per_node, p])
    table.add_row(["AND (Thm 1.1)", anr.samples_per_node, p])
    # Reproduction criterion: the threshold rule wins by a wide margin.
    assert thr.samples_per_node * 2 <= anr.samples_per_node
    print("\n" + save_table("e3b_rule_head_to_head", table))

    benchmark(lambda: ThresholdNetworkTester.solve(n, k, eps, p))
