"""E13 — Extension: the referee model of [ACT18] (related work §1.1).

The paper's related-work section contrasts its per-node one-bit outputs
with the model of Acharya–Canonne–Tyagi: one sample per player, a short
message to a referee, and a players-vs-communication trade-off.  This
benchmark measures that trade-off with the hash-and-test protocol:
halving the message length doubles-ish the players needed
(``k = Θ(n/(ε²·√B))``), while total communication *decreases* with
longer messages — and compares the regime with the paper's 0-round
threshold tester, which sends **zero** bits during testing but needs
``√(n/k)/ε²`` samples per node instead of one.
"""

from __future__ import annotations

import pytest

from repro.distributions import far_family, uniform
from repro.experiments import Table, loglog_slope
from repro.smp import RefereeProtocol

from _common import save_table

N, EPS = 4096, 0.9
TRIALS = 40


@pytest.mark.benchmark(group="e13")
def test_e13_players_vs_communication(benchmark):
    u = uniform(N)
    far = far_family("paninski", N, EPS, rng=0)
    table = Table(
        [
            "bits/player",
            "buckets B",
            "players k",
            "total bits",
            "err(uniform)",
            "err(far)",
        ],
        title="E13 - referee model: players vs communication at n=%d" % N,
    )
    ells, ks = [], []
    for ell in (4, 6, 8, 10):
        k = RefereeProtocol.players_needed(N, EPS, ell)
        proto = RefereeProtocol(n=N, eps=EPS, message_bits=ell, players=k)
        err_u = proto.estimate_error(u, True, TRIALS, rng=ell)
        err_f = proto.estimate_error(far, False, TRIALS, rng=ell + 1)
        assert err_u <= 1 / 3 + 0.1
        assert err_f <= 1 / 3 + 0.1
        ells.append(1 << ell)
        ks.append(k)
        table.add_row(
            [ell, proto.buckets, k, proto.total_communication_bits,
             round(err_u, 3), round(err_f, 3)]
        )
    slope, _ = loglog_slope(ells, ks)
    table.add_row(["k ~ B^slope:", round(slope, 3), "(theory -0.5)", "", "", ""])
    # Reproduction criterion: the inverse trade-off with the sqrt law.
    assert -0.6 <= slope <= -0.4
    print("\n" + save_table("e13_referee_tradeoff", table))

    proto = RefereeProtocol(
        n=N, eps=EPS, message_bits=8,
        players=RefereeProtocol.players_needed(N, EPS, 8),
    )
    benchmark(lambda: proto.run(u, rng=9))
