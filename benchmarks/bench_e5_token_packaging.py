"""E5 — τ-token packaging (Definition 2 / Theorem 5.1).

Reproduces: the protocol completes in O(D + τ) rounds on every topology
(measured slopes: ~1 in τ at fixed D, linear in D at fixed τ), while the
three Definition 2 invariants hold on every run (checked by the verifier,
which raises on violation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import run_token_packaging, verify_packaging
from repro.experiments import Table, loglog_slope
from repro.simulator import Topology

from _common import save_table


@pytest.mark.benchmark(group="e5")
def test_e5_rounds_table(benchmark):
    table = Table(
        ["topology", "D", "tau", "rounds", "4D+tau+12 budget", "packages", "dropped"],
        title="E5 - token packaging rounds vs the O(D + tau) bound",
    )
    rng = np.random.default_rng(0)
    topologies = [
        Topology.line(60),
        Topology.ring(60),
        Topology.grid(8, 8),
        Topology.star(60),
        Topology.balanced_tree(3, 3),
        Topology.gnp(60, 0.08, rng=1),
    ]
    for topo in topologies:
        for tau in (2, 8, 24):
            tokens = rng.integers(0, 1000, size=topo.k)
            outcomes, report = run_token_packaging(topo, tokens, tau, rng=2)
            verify_packaging(outcomes, tokens, tau)
            budget = 4 * topo.diameter() + tau + 12
            assert report.rounds <= budget
            packages = sum(len(o.packages) for o in outcomes)
            table.add_row(
                [topo.name, topo.diameter(), tau, report.rounds, budget,
                 packages, topo.k - packages * tau]
            )
    print("\n" + save_table("e5_token_packaging", table))

    topo = Topology.grid(8, 8)
    tokens = rng.integers(0, 1000, size=topo.k)
    benchmark(lambda: run_token_packaging(topo, tokens, 8, rng=3))


@pytest.mark.benchmark(group="e5")
def test_e5_tau_slope_on_star(benchmark):
    """On a D=2 star, rounds grow with slope ~1 in tau."""
    topo = Topology.star(80)
    taus, rounds = [], []
    for tau in (4, 8, 16, 32, 64):
        tokens = list(range(topo.k))
        _, report = run_token_packaging(topo, tokens, tau, rng=4)
        taus.append(tau)
        rounds.append(report.rounds)
    # Linear fit of rounds against tau: slope near 1.
    slope = np.polyfit(taus, rounds, 1)[0]
    table = Table(["tau", "rounds"], title="E5b - tau term on star(80), D=2")
    for t, r in zip(taus, rounds):
        table.add_row([t, r])
    table.add_row(["slope", round(float(slope), 3)])
    assert 0.8 <= slope <= 1.3
    print("\n" + save_table("e5b_tau_slope", table))

    benchmark(lambda: run_token_packaging(topo, list(range(topo.k)), 16, rng=5))


@pytest.mark.benchmark(group="e5")
def test_e5_diameter_slope_on_line(benchmark):
    """At fixed tau, rounds grow linearly in the line length (D = k-1)."""
    tau = 4
    ks, rounds = [], []
    for k in (20, 40, 80, 160):
        _, report = run_token_packaging(Topology.line(k), list(range(k)), tau, rng=6)
        ks.append(k - 1)
        rounds.append(report.rounds)
    slope, _ = loglog_slope(ks, rounds)
    table = Table(["D", "rounds"], title="E5c - D term on lines at tau=4")
    for d, r in zip(ks, rounds):
        table.add_row([d, r])
    table.add_row(["log-log slope", round(slope, 3)])
    assert 0.85 <= slope <= 1.15  # linear in D
    print("\n" + save_table("e5c_diameter_slope", table))

    benchmark(lambda: run_token_packaging(Topology.line(40), list(range(40)), tau, rng=7))
