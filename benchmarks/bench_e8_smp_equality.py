"""E8 — The SMP Equality protocol with asymmetric error (Lemma 7.3).

Reproduces: worst-case communication O(sqrt(tau delta n)) bits per player
(log-log slope 1/2 in both delta and n), perfect completeness, and
measured NO-side rejection >= tau*delta on worst-case (certified-distance)
input pairs — sandwiched against the Theorem 7.2 lower bound
Omega(sqrt(f(tau) delta n)).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import smp_equality_lower_bound, smp_equality_upper_bound
from repro.experiments import Table, loglog_slope
from repro.smp import EqualityProtocol

from _common import save_table

TAU = 2.0
TRIALS = 40_000


def _input_pair(n_bits: int, seed: int):
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 2, n_bits)
    y = x.copy()
    y[int(rng.integers(n_bits))] ^= 1  # 1-bit flip: worst case via the code
    return x, y


@pytest.mark.benchmark(group="e8")
def test_e8_error_profile_table(benchmark):
    table = Table(
        [
            "n bits",
            "delta",
            "comm bits",
            "lower bound",
            "upper curve",
            "rej(equal)",
            "rej(unequal)",
            "tau*delta target",
        ],
        title="E8 - Lemma 7.3 torus protocol (tau = %.1f)" % TAU,
    )
    cases = [(128, 0.02), (256, 0.02), (512, 0.02), (512, 0.005)]
    for n_bits, delta in cases:
        proto = EqualityProtocol.build(n_bits=n_bits, delta=delta, tau=TAU)
        x, y = _input_pair(n_bits, seed=n_bits)
        rej_eq = proto.estimate_rejection(x, x, TRIALS, rng=1)
        rej_neq = proto.estimate_rejection(x, y, TRIALS, rng=2)
        lower = smp_equality_lower_bound(n_bits, delta, TAU)
        upper = smp_equality_upper_bound(n_bits, delta, TAU)
        # Reproduction criteria.
        assert rej_eq == 0.0  # perfect completeness
        sigma = (TAU * delta / TRIALS) ** 0.5
        assert rej_neq >= TAU * delta - 4 * sigma
        assert proto.communication_bits >= lower * 0.3  # same order as Omega(.)
        table.add_row(
            [n_bits, delta, proto.communication_bits, round(lower, 1),
             round(upper, 1), rej_eq, round(rej_neq, 4), TAU * delta]
        )
    print("\n" + save_table("e8_smp_equality", table))

    proto = EqualityProtocol.build(n_bits=256, delta=0.02, tau=TAU)
    x, y = _input_pair(256, seed=3)
    benchmark(lambda: proto.run(x, y, rng=4))


@pytest.mark.benchmark(group="e8")
def test_e8_cost_scaling(benchmark):
    """Chunk length ~ sqrt(delta): slope 1/2 in a delta sweep."""
    deltas = [0.004, 0.008, 0.016, 0.032]
    chunks = []
    for delta in deltas:
        proto = EqualityProtocol.build(n_bits=512, delta=delta, tau=TAU)
        chunks.append(proto.chunk_length)
    slope, _ = loglog_slope(deltas, chunks)
    table = Table(["delta", "chunk bits"], title="E8b - cost ~ sqrt(delta)")
    for d, c in zip(deltas, chunks):
        table.add_row([d, c])
    table.add_row(["log-log slope", round(slope, 3)])
    assert 0.4 <= slope <= 0.6
    print("\n" + save_table("e8b_cost_scaling", table))

    benchmark(lambda: EqualityProtocol.build(n_bits=512, delta=0.01, tau=TAU))
