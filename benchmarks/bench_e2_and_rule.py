"""E2 — 0-round testing under the AND rule (Theorem 1.1).

Reproduces: network error <= p at
``s = Theta((C_p/eps^2) * sqrt(n / k^{Theta(eps^2/C_p)}))`` samples per
node, and the *weak* k-dependence that is the AND rule's signature — a
16x larger network buys far less than the threshold rule's 4x saving
(compared in E3's table).
"""

from __future__ import annotations

import pytest

from repro.core.bounds import and_rule_samples
from repro.distributions import far_family, uniform
from repro.experiments import Table
from repro.zeroround import AndRuleNetworkTester

from _common import save_table

N, EPS, P = 50_000, 1.0, 0.45
K_SWEEP = [256, 1024, 4096]
TRIALS = 60


@pytest.mark.benchmark(group="e2")
def test_e2_and_rule_table(benchmark):
    table = Table(
        [
            "k",
            "m",
            "s/node",
            "paper curve",
            "err(uniform)",
            "err(far)",
            "budget p",
        ],
        title="E2 - Theorem 1.1 (AND rule) at n=%d, eps=%.1f" % (N, EPS),
    )
    u = uniform(N)
    far = far_family("paninski", N, EPS, rng=0)
    samples_seen = []
    for k in K_SWEEP:
        tester = AndRuleNetworkTester.solve(N, k, EPS, P)
        # Seed-like rng routes through the batched trial engine; batch=None
        # lets auto_batch pick a memory-capped trials-per-matrix.
        err_u = tester.estimate_error(u, True, TRIALS, rng=k, batch=None)
        err_f = tester.estimate_error(far, False, TRIALS, rng=k + 1, batch=None)
        # Reproduction criteria: both error sides within budget (+MC slack).
        assert err_u <= P + 0.15
        assert err_f <= P + 0.15
        samples_seen.append(tester.samples_per_node)
        table.add_row(
            [
                k,
                tester.params.m,
                tester.samples_per_node,
                round(and_rule_samples(N, k, EPS, P), 1),
                round(err_u, 3),
                round(err_f, 3),
                P,
            ]
        )
    # Weak k-dependence: 16x nodes saves less than 3x samples.
    assert samples_seen[0] / samples_seen[-1] < 3.0
    print("\n" + save_table("e2_and_rule", table))

    tester = AndRuleNetworkTester.solve(N, K_SWEEP[0], EPS, P)
    # Benchmark the vectorised and_rule_verdicts kernel: 16 network trials
    # per call, one sample matrix each.
    benchmark(lambda: tester.test_many(u, 16, rng=1))
