"""E6 — The CONGEST uniformity tester (Theorem 1.4).

Reproduces: O(D + n/(k eps^4)) total rounds — D dominates on a line,
the tau term on a star — with network error <= 1/3 on both sides, all
messages within the O(log n) CONGEST budget, and the package size
following tau ~ n/k (increasing in n, decreasing in k).
"""

from __future__ import annotations

import pytest

from repro.congest import CongestUniformityTester, congest_parameters
from repro.distributions import far_family, uniform
from repro.experiments import Table
from repro.simulator import Topology
from repro.simulator.message import bits_for_domain, bits_for_int

from _common import save_table

N, K, EPS = 500, 5_000, 0.9
TRIALS = 9


@pytest.mark.benchmark(group="e6")
def test_e6_end_to_end_table(benchmark):
    tester = CongestUniformityTester.solve(N, K, EPS)
    u = uniform(N)
    far = far_family("paninski", N, EPS, rng=0)
    table = Table(
        [
            "topology",
            "D",
            "rounds",
            "O(D+tau) budget",
            "err(uniform)",
            "err(far)",
            "max msg bits",
            "budget bits",
        ],
        title="E6 - Theorem 1.4 at n=%d, k=%d, eps=%.1f (tau=%d)"
        % (N, K, EPS, tester.params.tau),
    )
    bits_budget = max(bits_for_domain(N), 2 * bits_for_int(K))
    star = Topology.star(K)
    for topo in (star,):
        # Trial-plane fast path; engine_check re-runs a third of the
        # trials through the engine and raises on any verdict mismatch.
        err_u = tester.estimate_error(
            topo, u, True, TRIALS, rng=1, fast_path=True, engine_check=1 / 3
        )
        err_f = tester.estimate_error(
            topo, far, False, TRIALS, rng=2, fast_path=True, engine_check=1 / 3
        )
        _, report = tester.run(topo, u, rng=3)
        budget = tester.params.predicted_rounds(topo.diameter())
        assert report.rounds <= budget
        assert report.max_edge_bits_per_round <= bits_budget
        assert err_u <= 1 / 3 + 0.25  # 9 trials -> generous MC slack
        assert err_f <= 1 / 3 + 0.25
        table.add_row(
            [topo.name, topo.diameter(), report.rounds, int(budget),
             round(err_u, 2), round(err_f, 2),
             report.max_edge_bits_per_round, bits_budget]
        )
    # One full line run (D = k-1 dominates the round count).
    line = Topology.line(K)
    accepted, report = tester.run(line, u, rng=4)
    budget = tester.params.predicted_rounds(line.diameter())
    assert report.rounds <= budget
    table.add_row(
        [line.name, line.diameter(), report.rounds, int(budget),
         "(1 run: %s)" % ("ok" if accepted else "err"), "-",
         report.max_edge_bits_per_round, bits_budget]
    )
    print("\n" + save_table("e6_congest", table))

    benchmark(lambda: tester.run(star, u, rng=5))


@pytest.mark.benchmark(group="e6")
def test_e6_tau_shape(benchmark):
    """tau = Theta(n/(k eps^4)): grows with n, shrinks with k."""
    table = Table(
        ["n", "k", "tau", "n/k"],
        title="E6b - package size tau vs n/k",
    )
    taus_by_k = []
    for k in (3_000, 6_000, 12_000):
        params = congest_parameters(N, k, EPS)
        taus_by_k.append(params.tau)
        table.add_row([N, k, params.tau, round(N / k, 3)])
    taus_by_n = []
    for n in (300, 600, 1_200):
        params = congest_parameters(n, 6_000, EPS)
        taus_by_n.append(params.tau)
        table.add_row([n, 6_000, params.tau, round(n / 6_000, 3)])
    assert taus_by_k == sorted(taus_by_k, reverse=True)  # shrinks with k
    assert taus_by_n == sorted(taus_by_n)                # grows with n
    print("\n" + save_table("e6b_tau_shape", table))

    benchmark(lambda: congest_parameters(N, K, EPS))
