"""E11 — Distributed identity testing via the filter reduction.

Reproduces the introduction's claim that testing equality to *any* fixed
distribution eta reduces to uniformity testing through a per-sample
filter each node applies locally with private coins — so every 0-round
construction in the paper transfers verbatim.  We test identity to a
grained Zipf profile with the Theorem 1.2 threshold network.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import threshold_parameters
from repro.distributions import (
    DiscreteDistribution,
    IdentityFilter,
    grain,
    l1_distance,
    zipf,
)
from repro.experiments import Table
from repro.rng import derive

from _common import save_table

BINS = 1_000
SENSORS = 20_000
EPS = 0.9


def _filtered_alarm_count(
    mu: DiscreteDistribution,
    filt: IdentityFilter,
    s: int,
    k: int,
    seed: int,
) -> int:
    """Vectorised epoch: k nodes sample, filter, and collision-test."""
    rng = derive(seed, "epoch")
    raw = mu.sample_matrix(k, s, rng)
    filtered = filt.apply(raw.reshape(-1), rng).reshape(k, s)
    ordered = np.sort(filtered, axis=1)
    return int((np.diff(ordered, axis=1) == 0).any(axis=1).sum())


@pytest.mark.benchmark(group="e11")
def test_e11_identity_to_zipf(benchmark):
    eta = zipf(BINS, 0.8)
    m = 16 * BINS  # fine grain: image domain large enough for Eq. (5)
    eta_grained = grain(eta, m)
    filt = IdentityFilter.for_target(eta_grained, m)
    eff_eps = EPS - l1_distance(eta, eta_grained)
    params = threshold_parameters(filt.image_domain_size, SENSORS, eff_eps)

    # Scenario distributions: eta itself, mild drift, heavy corruption.
    drift = DiscreteDistribution(np.roll(eta.probs, 50), name="drift")
    heavy = np.zeros(BINS)
    heavy[:10] = 1.0 / 10
    corrupted = eta.mix(DiscreteDistribution(heavy, name="hot"), 0.4)

    table = Table(
        ["scenario", "L1 dist to eta", "alarms", "threshold T", "verdict"],
        title="E11 - identity testing to zipf via the filter (k=%d)" % SENSORS,
    )
    verdicts = {}
    for name, mu in [("eta itself", eta), ("drift(+50)", drift),
                     ("40% corrupted", corrupted)]:
        alarms = _filtered_alarm_count(mu, filt, params.s, SENSORS, seed=len(name))
        verdict = alarms >= params.threshold
        verdicts[name] = verdict
        table.add_row(
            [name, round(l1_distance(mu, eta), 3), alarms, params.threshold,
             "reject" if verdict else "accept"]
        )
    # Reproduction criteria: eta accepted; far-from-eta scenarios rejected.
    assert not verdicts["eta itself"]
    assert verdicts["40% corrupted"]
    print("\n" + save_table("e11_identity", table))

    benchmark(
        lambda: _filtered_alarm_count(eta, filt, params.s, 2_000, seed=9)
    )


@pytest.mark.benchmark(group="e11")
def test_e11_filter_preserves_distance(benchmark):
    """The analytic core: the filter maps eta to uniform exactly and
    preserves L1 distances (full-support eta)."""
    eta = grain(zipf(200, 1.0), 800)
    filt = IdentityFilter.for_target(eta, 800)
    table = Table(
        ["input distance to eta", "image distance to uniform"],
        title="E11b - filter distance preservation",
    )
    rng = np.random.default_rng(0)
    for _ in range(5):
        noise = rng.dirichlet(np.ones(200))
        mu = DiscreteDistribution(0.7 * eta.probs + 0.3 * noise)
        d_in, d_out = filt.distance_guarantee(mu)
        assert d_out == pytest.approx(d_in, abs=1e-9)
        table.add_row([round(d_in, 4), round(d_out, 4)])
    print("\n" + save_table("e11b_filter_distance", table))

    mu = DiscreteDistribution(np.roll(eta.probs, 3))
    benchmark(lambda: filt.distance_guarantee(mu))
