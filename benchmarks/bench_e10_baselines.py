"""E10 — Centralized baselines vs the weak-signal regime.

Reproduces the paper's framing: the classical collision-count [21] and
chi-square testers reach constant error only at s = Theta(sqrt(n)/eps^2);
below that budget their error collapses to coin-flipping, while the
single-collision tester extracts a *reliable but tiny* signal from as few
as sqrt(2 delta n) samples — exactly what the distributed constructions
aggregate.  The empirical-L1 plug-in tester needs Theta(n/eps^2) and is
hopeless at any sublinear budget.
"""

from __future__ import annotations

import math

import pytest

from repro.core import ChiSquareTester, CollisionCountTester, EmpiricalL1Tester
from repro.core.collision import CollisionGapTester
from repro.distributions import far_family, uniform
from repro.experiments import Table
from repro.zeroround.network import estimate_rejection_probability

from _common import save_table

N, EPS = 2_000, 0.8
TRIALS = 400


def _error(tester, dist_u, dist_f, trials, seed):
    s = tester.samples_required
    err_u = sum(
        not tester.decide(dist_u.sample(s, rng=1000 * seed + t))
        for t in range(trials)
    ) / trials
    err_f = sum(
        tester.decide(dist_f.sample(s, rng=2000 * seed + t))
        for t in range(trials)
    ) / trials
    return err_u, err_f


@pytest.mark.benchmark(group="e10")
def test_e10_budget_sweep(benchmark):
    u = uniform(N)
    far = far_family("paninski", N, EPS, rng=0)
    sqrt_budget = int(math.sqrt(N) / EPS**2)  # ~70 at these parameters
    table = Table(
        ["tester", "s", "err(uniform)", "err(far)", "usable (both <= 1/3)?"],
        title="E10 - centralized testers across budgets at n=%d, eps=%.1f" % (N, EPS),
    )
    rows = [
        ("collision-count @ 0.5x", CollisionCountTester(N, sqrt_budget // 2, EPS)),
        ("collision-count @ 3x", CollisionCountTester(N, 3 * sqrt_budget, EPS)),
        ("chi-square @ 0.5x", ChiSquareTester(N, sqrt_budget // 2, EPS)),
        ("chi-square @ 3x", ChiSquareTester(N, 3 * sqrt_budget, EPS)),
        ("empirical-L1 @ 3x", EmpiricalL1Tester(N, 3 * sqrt_budget, EPS)),
        ("empirical-L1 @ linear", EmpiricalL1Tester.with_standard_budget(N, EPS)),
    ]
    usable = {}
    for name, tester in rows:
        trials = TRIALS if tester.samples_required < 5000 else 60
        err_u, err_f = _error(tester, u, far, trials, seed=len(name))
        ok = err_u <= 1 / 3 and err_f <= 1 / 3
        usable[name] = ok
        table.add_row([name, tester.samples_required, round(err_u, 3),
                       round(err_f, 3), "yes" if ok else "no"])
    # Reproduction criteria: the crossover happens where the theory says.
    assert usable["collision-count @ 3x"]
    assert usable["chi-square @ 3x"]
    assert not usable["collision-count @ 0.5x"] or not usable["chi-square @ 0.5x"]
    assert not usable["empirical-L1 @ 3x"]
    assert usable["empirical-L1 @ linear"]
    print("\n" + save_table("e10_baselines", table))

    tester = CollisionCountTester(N, 3 * sqrt_budget, EPS)
    benchmark(lambda: tester.decide(u.sample(tester.samples_required, rng=1)))


@pytest.mark.benchmark(group="e10")
def test_e10_weak_signal_below_crossover(benchmark):
    """At s far below sqrt(n)/eps^2 the single-collision gap is real:
    measurable, reliable, tiny — the paper's whole premise."""
    u = uniform(N)
    far = far_family("paninski", N, EPS, rng=1)
    tester = CollisionGapTester.from_delta(N, 0.05)  # s ~ 14 << 70
    rate_u = estimate_rejection_probability(u, tester.s, 100_000, rng=2)
    rate_f = estimate_rejection_probability(far, tester.s, 100_000, rng=3)
    table = Table(["quantity", "value"], title="E10b - the weak signal")
    table.add_row(["s (gap tester)", tester.s])
    table.add_row(["sqrt(n)/eps^2 crossover", int(math.sqrt(N) / EPS**2)])
    table.add_row(["rej(uniform)", round(rate_u, 4)])
    table.add_row(["rej(far)", round(rate_f, 4)])
    table.add_row(["measured gap ratio", round(rate_f / max(rate_u, 1e-9), 3)])
    assert rate_f > rate_u  # the signal exists ...
    assert rate_f < 0.2     # ... but it is far too weak to decide alone
    print("\n" + save_table("e10b_weak_signal", table))

    benchmark(lambda: estimate_rejection_probability(u, tester.s, 4096, rng=4))
