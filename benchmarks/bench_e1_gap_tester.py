"""E1 — The single-collision gap tester (Theorem 3.1 / Lemma 3.4).

Reproduces: ``Pr[reject | uniform] <= delta`` and
``Pr[reject | eps-far] >= (1 + gamma*eps^2) * delta`` with gamma the
explicit Eq. (1) slack, measured over vectorised Monte-Carlo batches on
the worst-case (Paninski) and bulk (two-bump) far families.
"""

from __future__ import annotations

import pytest

from repro.core import CollisionGapTester
from repro.distributions import far_family, uniform
from repro.experiments import Table, wilson_interval
from repro.zeroround.network import estimate_rejection_probability

from _common import save_table

N = 20_000
TRIALS = 30_000
BATCH = 8192  # trials per vectorised sample matrix in the batched engine
CASES = [
    (0.05, 0.6, "paninski"),
    (0.05, 0.9, "paninski"),
    (0.10, 0.9, "paninski"),
    (0.05, 0.9, "two_bump"),
    (0.10, 0.6, "two_bump"),
]


@pytest.mark.benchmark(group="e1")
def test_e1_gap_tester_table(benchmark):
    table = Table(
        [
            "delta",
            "eps",
            "family",
            "s",
            "rej(uniform)",
            "delta bound",
            "rej(far)",
            "(1+g*e^2)*delta floor",
        ],
        title="E1 - (delta, 1+gamma*eps^2)-gap of the single-collision tester",
    )
    u = uniform(N)
    for delta, eps, family in CASES:
        tester = CollisionGapTester.from_delta(N, delta)
        far = far_family(family, N, eps, rng=1)
        # Seed-like rng routes through TrialRunner.error_rate_batched, so
        # the estimates are chunk-keyed and invariant to batch/workers.
        rate_u = estimate_rejection_probability(
            u, tester.s, TRIALS, rng=2, batch=BATCH
        )
        rate_f = estimate_rejection_probability(
            far, tester.s, TRIALS, rng=3, batch=BATCH
        )
        floor = (1.0 + tester.gamma(eps) * eps * eps) * tester.delta
        # Reproduction criteria (4-sigma Monte-Carlo margins).
        sigma = (tester.delta / TRIALS) ** 0.5
        assert rate_u <= tester.delta + 4 * sigma
        assert rate_f >= floor - 4 * sigma
        table.add_row(
            [delta, eps, family, tester.s, round(rate_u, 4),
             round(tester.delta, 4), round(rate_f, 4), round(floor, 4)]
        )
    print("\n" + save_table("e1_gap_tester", table))

    tester = CollisionGapTester.from_delta(N, 0.05)
    benchmark(
        lambda: estimate_rejection_probability(
            u, tester.s, 4096, rng=9, batch=4096
        )
    )
