"""Asymmetric sampling costs (Section 4): a heterogeneous monitoring fleet.

Three device tiers share one detection job: cheap edge boxes (cost 1 per
sample), mid-tier gateways (cost 3), and battery-powered remote probes
(cost 10).  The Section 4 construction assigns each tier a sample quota
proportional to 1/cost so that everyone pays the same total cost C — and C
itself is Θ(√n/ε²)/‖T‖₂, minimised over all assignments.

The script compares the asymmetric optimum against the naive "everyone
draws the same s" policy.

Run:  python examples/asymmetric_fleet.py
"""

from __future__ import annotations

import numpy as np

from repro import CostVector, asymmetric_threshold_parameters, far_family, uniform
from repro.core.params import threshold_parameters
from repro.experiments import Table

N = 50_000
EPS = 0.9
TIERS = [
    ("edge box", 1.0, 12_000),
    ("gateway", 3.0, 6_000),
    ("remote probe", 10.0, 2_000),
]


def main() -> None:
    costs = CostVector.of(
        [cost for _, cost, count in TIERS for _ in range(count)]
    )
    k = costs.k
    params = asymmetric_threshold_parameters(N, costs, EPS)

    table = Table(
        ["tier", "cost/sample", "devices", "samples each", "cost each"],
        title=f"Asymmetric plan (max individual cost C = {params.max_cost:.0f})",
    )
    offset = 0
    for name, cost, count in TIERS:
        s = params.samples[offset]
        table.add_row([name, cost, count, s, s * cost])
        offset += count
    print(table.render())

    # Naive symmetric policy: ignore costs, run Theorem 1.2 as-is.
    sym = threshold_parameters(N, k, EPS)
    worst_cost = sym.s * max(c for _, c, _ in TIERS)
    print(
        f"\nNaive symmetric policy: every device draws {sym.s} samples, so "
        f"a remote probe pays {worst_cost:.0f} — "
        f"{worst_cost / params.max_cost:.1f}x the asymmetric optimum."
    )

    # Does the asymmetric network still detect?
    far = far_family("paninski", N, EPS, rng=0)
    u = uniform(N)
    correct_far = sum(not params.test(far, rng=i) for i in range(10))
    correct_uni = sum(params.test(u, rng=100 + i) for i in range(10))
    print(
        f"\nDetection check over 10 epochs each: far rejected {correct_far}/10, "
        f"uniform accepted {correct_uni}/10 (both should be >= 7)."
    )


if __name__ == "__main__":
    main()
