"""Continuous monitoring: incidents over a live traffic stream.

A 10,000-node network watches a stream of epochs.  Around epoch 25 an
attack window opens for 15 epochs; the monitor (threshold tester + alarm
hysteresis) should raise exactly one incident that brackets the window,
and stay quiet through the healthy epochs — even though any single epoch
verdict can err with probability up to 1/3.

Run:  python examples/streaming_monitor.py
"""

from __future__ import annotations

from repro import ThresholdNetworkTester, far_family, uniform
from repro.monitoring import AttackWindowStream, UniformityMonitor

N, K, EPS = 20_000, 10_000, 1.0
EPOCHS = 60
ATTACK = (25, 40)


def main() -> None:
    tester = ThresholdNetworkTester.solve(N, K, EPS)
    monitor = UniformityMonitor(tester=tester, raise_after=2, clear_after=2)
    stream = AttackWindowStream(
        baseline=uniform(N),
        attack=far_family("heavy", N, 1.0, rng=3),
        share=1.0,
        start=ATTACK[0],
        end=ATTACK[1],
    )
    report = monitor.run(stream, epochs=EPOCHS, rng=7)

    print(
        f"{K} nodes x {tester.samples_per_node} samples/epoch, alarm "
        f"threshold {tester.params.threshold}; attack during epochs "
        f"[{ATTACK[0]}, {ATTACK[1]}).\n"
    )
    print("epoch timeline ('.' quiet, '!' alarming epoch, '#' incident open):")
    line = []
    for record in report.records:
        if record.incident_open:
            line.append("#")
        elif record.alarming:
            line.append("!")
        else:
            line.append(".")
    print("  " + "".join(line))

    print("\nincidents:")
    for incident in report.incidents:
        end = incident.cleared_at if incident.cleared_at is not None else "open"
        print(f"  raised at epoch {incident.raised_at}, cleared at {end} "
              f"({incident.duration(EPOCHS)} epochs)")
    if not report.incidents:
        print("  none")


if __name__ == "__main__":
    main()
