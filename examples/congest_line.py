"""CONGEST uniformity testing on real topologies (Theorem 1.4).

Every node holds just ONE sample — far too little to decide anything
alone.  The network packages samples into virtual nodes of τ samples
(token packaging, Theorem 5.1), tests each package for a collision, and
convergecasts the alarm count to a root.  Total: O(D + n/(kε⁴)) rounds of
O(log n)-bit messages, which this script *measures* on a line (worst
diameter) and a star (best diameter).

Run:  python examples/congest_line.py
"""

from __future__ import annotations

from repro.congest import CongestUniformityTester
from repro.distributions import far_family, uniform
from repro.experiments import Table
from repro.simulator import Topology

N = 500      # domain size
K = 3_000    # network size (one sample per node)
EPS = 0.9


def main() -> None:
    tester = CongestUniformityTester.solve(N, K, EPS)
    p = tester.params
    print(
        f"Theorem 1.4 parameters at n={N}, k={K}, eps={EPS}: package size "
        f"tau={p.tau}, ~{p.expected_virtual_nodes} virtual nodes, alarm "
        f"probabilities {p.alarm_prob_uniform:.4f} (uniform) vs "
        f">= {p.alarm_prob_far:.4f} (far).\n"
    )

    table = Table(
        [
            "topology",
            "diameter",
            "distribution",
            "verdict",
            "rounds",
            "O(D+tau) budget",
            "messages",
            "max msg bits",
        ],
        title="Full protocol executions",
    )
    topologies = [Topology.line(K), Topology.star(K)]
    u = uniform(N)
    far = far_family("paninski", N, EPS, rng=1)
    for topo in topologies:
        d = topo.diameter()
        for label, dist, seed in [("uniform", u, 10), (f"{EPS}-far", far, 20)]:
            accepted, report = tester.run(topo, dist, rng=seed)
            table.add_row(
                [
                    topo.name,
                    d,
                    label,
                    "accept" if accepted else "reject",
                    report.rounds,
                    int(p.predicted_rounds(d)),
                    report.messages,
                    report.max_edge_bits_per_round,
                ]
            )
    print(table.render())
    print(
        "\nEvery message fits the CONGEST budget (the engine *rejects* "
        "oversized messages rather than measuring them)."
    )


if __name__ == "__main__":
    main()
