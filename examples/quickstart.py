"""Quickstart: 0-round distributed uniformity testing in five minutes.

A network of k = 20,000 nodes each draws a handful of samples from an
unknown distribution on n = 50,000 outcomes and raises (or doesn't raise)
an alarm; the network rejects iff at least T nodes alarm (Theorem 1.2 of
Fischer–Meir–Oshman, PODC 2018).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ThresholdNetworkTester, far_family, uniform
from repro.core.bounds import centralized_sample_complexity

N = 50_000   # domain size
K = 20_000   # network size
EPS = 0.9    # distance parameter: reject anything 0.9-far in L1


def main() -> None:
    tester = ThresholdNetworkTester.solve(n=N, k=K, eps=EPS)
    params = tester.params
    print("Solved Theorem 1.2 parameters:")
    print(f"  samples per node   s = {params.s}")
    print(f"  per-node delta       = {params.delta:.4g}")
    print(f"  alarm threshold    T = {params.threshold}")
    print(f"  (a single node would need ~{centralized_sample_complexity(N, EPS):.0f} samples alone)")

    print("\nTesting the uniform distribution (should ACCEPT):")
    u = uniform(N)
    for trial in range(3):
        alarms = tester.rejection_count(u, rng=trial)
        verdict = "accept" if alarms < params.threshold else "reject"
        print(f"  trial {trial}: {alarms} alarms -> {verdict}")

    print(f"\nTesting a certified {EPS}-far distribution (should REJECT):")
    far = far_family("paninski", N, EPS, rng=42)
    for trial in range(3):
        alarms = tester.rejection_count(far, rng=100 + trial)
        verdict = "accept" if alarms < params.threshold else "reject"
        print(f"  trial {trial}: {alarms} alarms -> {verdict}")

    print("\nError-rate estimate over 50 network executions each:")
    err_u = tester.estimate_error(u, is_uniform=True, trials=50, rng=7)
    err_f = tester.estimate_error(far, is_uniform=False, trials=50, rng=8)
    print(f"  error on uniform : {err_u:.2f}   (guarantee <= 1/3)")
    print(f"  error on far     : {err_f:.2f}   (guarantee <= 1/3)")


if __name__ == "__main__":
    main()
