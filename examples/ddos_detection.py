"""DDoS detection: the paper's motivating scenario for distributed testing.

A fleet of routers samples the flow IDs of the traffic they forward.
Healthy traffic is spread ~uniformly over flows; during a distributed
denial-of-service attack a small set of flows dominates, skewing the
distribution away from uniform.  Each router runs the single-collision
tester on its own samples (no coordination traffic!) and flags an alarm;
the operator pages on-call iff at least T routers alarm (Theorem 1.2).

The attack model here is a Zipf mixture: a fraction `attack_share` of all
packets concentrates on `hot_flows` flows.

Run:  python examples/ddos_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import ThresholdNetworkTester, uniform
from repro.distributions import DiscreteDistribution, l1_distance_to_uniform, mixture
from repro.experiments import Table

FLOWS = 50_000     # distinct flow IDs (the domain)
ROUTERS = 20_000   # network size
EPS = 0.8          # alarm when traffic is 0.8-far from uniform in L1


def attack_traffic(attack_share: float, hot_flows: int) -> DiscreteDistribution:
    """Mix uniform background with a hot set carrying `attack_share` mass."""
    hot = np.zeros(FLOWS)
    hot[:hot_flows] = 1.0 / hot_flows
    return mixture(
        [DiscreteDistribution(hot, name="hot"), uniform(FLOWS)],
        [attack_share, 1.0 - attack_share],
        name=f"attack({attack_share:.0%})",
    )


def main() -> None:
    tester = ThresholdNetworkTester.solve(n=FLOWS, k=ROUTERS, eps=EPS)
    print(
        f"Fleet of {ROUTERS} routers, {FLOWS} flows: each router samples "
        f"{tester.samples_per_node} packets; page on-call at "
        f"{tester.params.threshold} router alarms.\n"
    )

    table = Table(
        ["traffic", "L1 dist to uniform", "router alarms", "threshold", "verdict"],
        title="One monitoring epoch per traffic mix",
    )
    scenarios = [("healthy", uniform(FLOWS))] + [
        (f"attack {share:.0%} on {hot} flows", attack_traffic(share, hot))
        for share, hot in [(0.3, 100), (0.5, 100), (0.5, 1000), (0.8, 10)]
    ]
    for name, traffic in scenarios:
        alarms = tester.rejection_count(traffic, rng=hash(name) % 2**31)
        verdict = "PAGE" if alarms >= tester.params.threshold else "ok"
        table.add_row(
            [
                name,
                round(l1_distance_to_uniform(traffic), 3),
                alarms,
                tester.params.threshold,
                verdict,
            ]
        )
    print(table.render())

    print(
        "\nNote: mixes with L1 distance below eps sit inside the promise "
        "gap — the tester may legitimately stay quiet there."
    )


if __name__ == "__main__":
    main()
