"""Sensor network: testing identity to a *non-uniform* baseline.

A plant's sensors each sample a discretised temperature reading.  The
"normal" profile η is not uniform (temperatures cluster around set
points), so plain uniformity testing does not apply — but the paper's
introduction notes that identity-to-η reduces to uniformity via a
*filter* each node applies locally with private coins [Goldreich 2016].

Pipeline per sensor:
  raw reading  →  grained-η filter  →  bucket ID  →  collision tester
and the network decides with the Theorem 1.2 threshold rule.

Run:  python examples/sensor_identity.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CollisionGapTester
from repro.core.params import threshold_parameters
from repro.distributions import (
    DiscreteDistribution,
    IdentityFilter,
    grain,
    l1_distance,
)
from repro.experiments import Table
from repro.rng import ensure_rng

BINS = 2_000        # discretised temperature bins
SENSORS = 20_000
EPS = 0.9           # reject profiles 0.9-far from the baseline


def baseline_profile() -> DiscreteDistribution:
    """Two Gaussian-ish bumps around the plant's set points."""
    x = np.arange(BINS, dtype=np.float64)
    bumps = np.exp(-((x - 600.0) ** 2) / (2 * 120.0**2)) + 0.7 * np.exp(
        -((x - 1400.0) ** 2) / (2 * 90.0**2)
    )
    bumps += 1e-4  # thin uniform floor so support is full
    return DiscreteDistribution(bumps / bumps.sum(), name="baseline")


def overheating_profile(shift: int) -> DiscreteDistribution:
    """The same plant with both bumps drifted `shift` bins hotter."""
    base = baseline_profile()
    probs = np.roll(base.probs, shift)
    return DiscreteDistribution(probs, name=f"drift(+{shift})")


def run_epoch(mu: DiscreteDistribution, filt: IdentityFilter, s: int,
              threshold: int, tester: CollisionGapTester, seed: int) -> int:
    """One monitoring epoch: every sensor samples, filters, tests.

    Vectorised: all sensors' draws in one matrix, one filter pass, and a
    sort-based collision check per row — identical in distribution to the
    per-sensor loop.
    """
    rng = ensure_rng(seed)
    raw = mu.sample_matrix(SENSORS, s, rng)
    filtered = filt.apply(raw.reshape(-1), rng).reshape(SENSORS, s)
    ordered = np.sort(filtered, axis=1)
    collided = (np.diff(ordered, axis=1) == 0).any(axis=1)
    return int(collided.sum())


def main() -> None:
    eta = baseline_profile()
    m = 4 * BINS  # grain: costs at most BINS/m = 0.25 of the eps budget
    eta_grained = grain(eta, m)
    filt = IdentityFilter.for_target(eta_grained, m)
    image_n = filt.image_domain_size

    # The filter maps eta to U_m; solve the threshold construction on the
    # image domain (distance shrinks by at most the graining error).
    eff_eps = EPS - l1_distance(eta, eta_grained)
    params = threshold_parameters(image_n, SENSORS, eff_eps)
    tester = CollisionGapTester(n=image_n, s=params.s)
    print(
        f"{SENSORS} sensors, {BINS} temperature bins -> filter image "
        f"domain {image_n}; {params.s} readings per sensor per epoch, "
        f"alarm threshold {params.threshold}.\n"
    )

    table = Table(
        ["profile", "L1 dist to baseline", "alarms", "verdict"],
        title="Monitoring epochs",
    )
    scenarios = [
        ("normal", eta),
        ("drift +40 bins", overheating_profile(40)),
        ("drift +200 bins", overheating_profile(200)),
    ]
    for name, mu in scenarios:
        alarms = run_epoch(mu, filt, params.s, params.threshold, tester, seed=len(name))
        verdict = "ALERT" if alarms >= params.threshold else "ok"
        table.add_row(
            [name, round(l1_distance(mu, eta), 3), alarms, verdict]
        )
    print(table.render())


if __name__ == "__main__":
    main()
